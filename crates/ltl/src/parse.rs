//! Parser for [`Ltl`] formulas.
//!
//! Grammar (loosest to tightest binding):
//!
//! ```text
//! iff   := imp ("<->" imp)*
//! imp   := or ("->" imp)?                  // right associative
//! or    := and ("|" and)*
//! and   := bin ("&" bin)*
//! bin   := unary (("U" | "R" | "W") bin)?  // right associative
//! unary := ("!" | "X" | "G" | "F" | "[]" | "<>") unary | atom
//! atom  := ident | "true" | "false" | "1" | "0" | "(" iff ")"
//! ```
//!
//! The single upper-case letters `U R W G F X` are reserved operator
//! keywords (as in SPIN/Spot), so signals cannot carry those exact names.
//! `a W b` (weak until) is accepted and desugared to `(a U b) | G a`.

use crate::formula::Ltl;
use dic_logic::SignalTable;
use std::error::Error;
use std::fmt;

/// Error produced when parsing an LTL formula fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLtlError {
    /// Byte offset in the input where the error occurred.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseLtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LTL parse error at byte {}: {}", self.position, self.message)
    }
}

impl Error for ParseLtlError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    True,
    False,
    Not,
    And,
    Or,
    Imp,
    Iff,
    Next,
    Globally,
    Finally,
    Until,
    Release,
    WeakUntil,
    LParen,
    RParen,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseLtlError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            '!' | '~' => {
                toks.push((i, Tok::Not));
                i += 1;
            }
            '&' => {
                toks.push((i, Tok::And));
                i += if src[i..].starts_with("&&") { 2 } else { 1 };
            }
            '|' => {
                toks.push((i, Tok::Or));
                i += if src[i..].starts_with("||") { 2 } else { 1 };
            }
            '-' => {
                if src[i..].starts_with("->") {
                    toks.push((i, Tok::Imp));
                    i += 2;
                } else {
                    return Err(ParseLtlError {
                        position: i,
                        message: "expected '->'".into(),
                    });
                }
            }
            '<' => {
                if src[i..].starts_with("<->") {
                    toks.push((i, Tok::Iff));
                    i += 3;
                } else if src[i..].starts_with("<>") {
                    toks.push((i, Tok::Finally));
                    i += 2;
                } else {
                    return Err(ParseLtlError {
                        position: i,
                        message: "expected '<->' or '<>'".into(),
                    });
                }
            }
            '[' => {
                if src[i..].starts_with("[]") {
                    toks.push((i, Tok::Globally));
                    i += 2;
                } else {
                    return Err(ParseLtlError {
                        position: i,
                        message: "expected '[]'".into(),
                    });
                }
            }
            '0' => {
                toks.push((i, Tok::False));
                i += 1;
            }
            '1' => {
                toks.push((i, Tok::True));
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || matches!(d, '_' | '.' | '[' | ']') {
                        // Careful: '[' here would swallow the `[]` operator,
                        // but identifiers like data[3] are common in EDA.
                        // Disambiguate: only treat '[' as part of the name if
                        // it is not immediately "[]".
                        if d == '[' && src[i..].starts_with("[]") {
                            break;
                        }
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..i];
                let tok = match word {
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "U" => Tok::Until,
                    "R" => Tok::Release,
                    "W" => Tok::WeakUntil,
                    "G" => Tok::Globally,
                    "F" => Tok::Finally,
                    "X" => Tok::Next,
                    _ => Tok::Ident(word.to_owned()),
                };
                toks.push((start, tok));
            }
            other => {
                return Err(ParseLtlError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    table: &'a mut SignalTable,
    src_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(self.src_len)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn iff(&mut self) -> Result<Ltl, ParseLtlError> {
        let mut lhs = self.imp()?;
        while self.eat(&Tok::Iff) {
            let rhs = self.imp()?;
            lhs = Ltl::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn imp(&mut self) -> Result<Ltl, ParseLtlError> {
        let lhs = self.or()?;
        if self.eat(&Tok::Imp) {
            let rhs = self.imp()?;
            Ok(Ltl::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Ltl, ParseLtlError> {
        let mut parts = vec![self.and()?];
        while self.eat(&Tok::Or) {
            parts.push(self.and()?);
        }
        Ok(Ltl::or(parts))
    }

    fn and(&mut self) -> Result<Ltl, ParseLtlError> {
        let mut parts = vec![self.bin()?];
        while self.eat(&Tok::And) {
            parts.push(self.bin()?);
        }
        Ok(Ltl::and(parts))
    }

    fn bin(&mut self) -> Result<Ltl, ParseLtlError> {
        let lhs = self.unary()?;
        if self.eat(&Tok::Until) {
            let rhs = self.bin()?;
            Ok(Ltl::until(lhs, rhs))
        } else if self.eat(&Tok::Release) {
            let rhs = self.bin()?;
            Ok(Ltl::release(lhs, rhs))
        } else if self.eat(&Tok::WeakUntil) {
            let rhs = self.bin()?;
            Ok(Ltl::weak_until(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn unary(&mut self) -> Result<Ltl, ParseLtlError> {
        if self.eat(&Tok::Not) {
            return Ok(Ltl::not(self.unary()?));
        }
        if self.eat(&Tok::Next) {
            return Ok(Ltl::next(self.unary()?));
        }
        if self.eat(&Tok::Globally) {
            return Ok(Ltl::globally(self.unary()?));
        }
        if self.eat(&Tok::Finally) {
            return Ok(Ltl::finally(self.unary()?));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Ltl, ParseLtlError> {
        let position = self.here();
        let tok = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        match tok {
            Some(Tok::Ident(name)) => Ok(Ltl::atom(self.table.intern(&name))),
            Some(Tok::True) => Ok(Ltl::tt()),
            Some(Tok::False) => Ok(Ltl::ff()),
            Some(Tok::LParen) => {
                let f = self.iff()?;
                if self.eat(&Tok::RParen) {
                    Ok(f)
                } else {
                    Err(ParseLtlError {
                        position: self.here(),
                        message: "expected ')'".into(),
                    })
                }
            }
            other => Err(ParseLtlError {
                position,
                message: format!("expected an atom, found {other:?}"),
            }),
        }
    }
}

impl Ltl {
    /// Parses an LTL formula, interning signal names in `table`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseLtlError`] with the byte offset of the failure on
    /// malformed input.
    ///
    /// # Example
    ///
    /// ```
    /// use dic_logic::SignalTable;
    /// use dic_ltl::Ltl;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut t = SignalTable::new();
    /// let r1 = Ltl::parse("G(r1 -> X n1)", &mut t)?; // paper's R1
    /// assert_eq!(r1.atoms().len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(src: &str, table: &mut SignalTable) -> Result<Ltl, ParseLtlError> {
        let toks = lex(src)?;
        let mut p = Parser {
            toks,
            pos: 0,
            table,
            src_len: src.len(),
        };
        let f = p.iff()?;
        if p.pos != p.toks.len() {
            return Err(ParseLtlError {
                position: p.here(),
                message: "trailing input".into(),
            });
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> (Ltl, SignalTable) {
        let mut t = SignalTable::new();
        let f = Ltl::parse(src, &mut t).expect("parse");
        (f, t)
    }

    #[test]
    fn paper_architectural_intent_round_trips() {
        let (f, t) = parse("G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))");
        let shown = f.display(&t).to_string();
        assert_eq!(shown, "G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))");
        let mut t2 = t.clone();
        assert_eq!(Ltl::parse(&shown, &mut t2).expect("reparse"), f);
    }

    #[test]
    fn until_binds_tighter_than_and() {
        let (f, t) = parse("a & b U c");
        assert_eq!(f.display(&t).to_string(), "a & b U c");
        // Must equal a & (b U c)
        let (g, _) = parse("a & (b U c)");
        // Name-identity holds because both tables intern a,b,c in order.
        assert_eq!(format!("{f:?}"), format!("{g:?}"));
    }

    #[test]
    fn until_right_associative() {
        let (f, _t) = parse("a U b U c");
        let (g, _t2) = parse("a U (b U c)");
        assert_eq!(format!("{f:?}"), format!("{g:?}"));
    }

    #[test]
    fn spin_style_operators() {
        let (f, _t) = parse("[] (p -> <> q)");
        let (g, _t2) = parse("G(p -> F q)");
        assert_eq!(format!("{f:?}"), format!("{g:?}"));
    }

    #[test]
    fn weak_until_desugars() {
        let (f, _t) = parse("p W q");
        let (g, _t2) = parse("(p U q) | G p");
        assert_eq!(format!("{f:?}"), format!("{g:?}"));
    }

    #[test]
    fn iff_desugars() {
        let (f, _t) = parse("p <-> q");
        let (g, _t2) = parse("(p -> q) & (q -> p)");
        assert_eq!(format!("{f:?}"), format!("{g:?}"));
    }

    #[test]
    fn implication_right_assoc() {
        let (f, _t) = parse("a -> b -> c");
        let (g, _t2) = parse("a -> (b -> c)");
        assert_eq!(format!("{f:?}"), format!("{g:?}"));
    }

    #[test]
    fn errors_report_position() {
        let mut t = SignalTable::new();
        let e = Ltl::parse("G(p ->", &mut t).unwrap_err();
        assert_eq!(e.position, 6); // end of input
        assert!(Ltl::parse("p q", &mut t).is_err());
        assert!(Ltl::parse("(p", &mut t).is_err());
        assert!(Ltl::parse("p $ q", &mut t).is_err());
    }

    #[test]
    fn identifiers_with_brackets() {
        let mut t = SignalTable::new();
        let f = Ltl::parse("data[3] & [] p", &mut t).expect("parse");
        assert!(t.lookup("data[3]").is_some());
        assert_eq!(f.atoms().len(), 2);
    }
}
