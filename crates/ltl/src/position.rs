//! Syntactic positions inside an LTL formula.
//!
//! The paper's Algorithm 1 presents the coverage gap by *pushing* uncovered
//! terms into the parse tree of an architectural property and then weakening
//! specific variable instances (Example 4 weakens the `r2` instance inside
//! `X(r1 U r2)` with the literal `X !hit`). That requires addressing
//! occurrences of subformulas — not subformulas up to equality — together
//! with their *polarity*, because weakening a property means weakening
//! positive occurrences and strengthening negative ones.

use crate::formula::{Ltl, LtlNode};
use std::fmt;

/// Polarity of a subformula occurrence.
///
/// An occurrence under an even number of negations is [`Polarity::Positive`]:
/// replacing it by a weaker formula weakens the whole property. Under an odd
/// number of negations (e.g. inside the antecedent of an implication, which
/// is kept as `!ant | cons`) the occurrence is [`Polarity::Negative`]:
/// *strengthening* it weakens the whole property.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Even number of enclosing negations.
    Positive,
    /// Odd number of enclosing negations.
    Negative,
}

impl Polarity {
    /// The opposite polarity.
    pub fn flip(self) -> Self {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
        }
    }
}

/// A path from the root of a formula to a subformula occurrence.
///
/// Each step is a child index: unary operators have child `0`, binary
/// temporal operators have children `0` (left) and `1` (right), and n-ary
/// `And`/`Or` use the operand index.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Position(Vec<usize>);

impl Position {
    /// The root position.
    pub fn root() -> Self {
        Position(Vec::new())
    }

    /// Builds a position from explicit child indices.
    pub fn from_path(path: Vec<usize>) -> Self {
        Position(path)
    }

    /// The child indices from the root.
    pub fn path(&self) -> &[usize] {
        &self.0
    }

    /// This position extended by one child step.
    pub fn child(&self, index: usize) -> Self {
        let mut p = self.0.clone();
        p.push(index);
        Position(p)
    }

    /// Depth of the position (number of steps from the root).
    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε")?;
        for step in &self.0 {
            write!(f, ".{step}")?;
        }
        Ok(())
    }
}

/// One enumerated subformula occurrence; see [`Ltl::positions`].
#[derive(Clone, Debug)]
pub struct Occurrence {
    /// Where the subformula occurs.
    pub position: Position,
    /// The subformula at that position.
    pub subformula: Ltl,
    /// Polarity of the occurrence.
    pub polarity: Polarity,
    /// Number of `X` operators (and `U`/`R`/`G`/`F` bodies count as 0 — see
    /// note) crossed on the way here. This is the *minimum* time offset at
    /// which the occurrence is evaluated, used to align uncovered-term
    /// literals with variable instances.
    pub x_depth: usize,
    /// Number of *unbounded* temporal operators (`U`, `R`, `G`, `F`) the
    /// occurrence is nested under. Algorithm 1's weakening step targets the
    /// variable instances that sit inside unbounded operators (Fig. 6: "the
    /// gaps lie inside the unbounded operator until"), so candidates are
    /// explored deepest-unbounded first.
    pub unbounded_depth: usize,
}

impl Ltl {
    /// The subformula at `position`, or `None` if the path does not exist.
    pub fn subformula_at(&self, position: &Position) -> Option<&Ltl> {
        let mut cur = self;
        for &step in position.path() {
            cur = match (cur.node(), step) {
                (LtlNode::Not(f), 0)
                | (LtlNode::Next(f), 0)
                | (LtlNode::Globally(f), 0)
                | (LtlNode::Finally(f), 0) => f,
                (LtlNode::And(fs), i) | (LtlNode::Or(fs), i) if i < fs.len() => &fs[i],
                (LtlNode::Until(a, _), 0) | (LtlNode::Release(a, _), 0) => a,
                (LtlNode::Until(_, b), 1) | (LtlNode::Release(_, b), 1) => b,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Rebuilds the formula with the subformula at `position` replaced by
    /// `new`. Returns `None` if the path does not exist.
    ///
    /// Smart constructors are re-applied along the path, so the result may
    /// be locally simplified (e.g. a replacement by `true` collapses its
    /// conjunction).
    pub fn replace_at(&self, position: &Position, new: Ltl) -> Option<Ltl> {
        self.replace_rec(position.path(), new)
    }

    fn replace_rec(&self, path: &[usize], new: Ltl) -> Option<Ltl> {
        let Some((&step, rest)) = path.split_first() else {
            return Some(new);
        };
        Some(match (self.node(), step) {
            (LtlNode::Not(f), 0) => Ltl::not(f.replace_rec(rest, new)?),
            (LtlNode::Next(f), 0) => Ltl::next(f.replace_rec(rest, new)?),
            (LtlNode::Globally(f), 0) => Ltl::globally(f.replace_rec(rest, new)?),
            (LtlNode::Finally(f), 0) => Ltl::finally(f.replace_rec(rest, new)?),
            (LtlNode::And(fs), i) if i < fs.len() => {
                let mut parts = fs.clone();
                parts[i] = fs[i].replace_rec(rest, new)?;
                Ltl::and(parts)
            }
            (LtlNode::Or(fs), i) if i < fs.len() => {
                let mut parts = fs.clone();
                parts[i] = fs[i].replace_rec(rest, new)?;
                Ltl::or(parts)
            }
            (LtlNode::Until(a, b), 0) => Ltl::until(a.replace_rec(rest, new)?, b.clone()),
            (LtlNode::Until(a, b), 1) => Ltl::until(a.clone(), b.replace_rec(rest, new)?),
            (LtlNode::Release(a, b), 0) => Ltl::release(a.replace_rec(rest, new)?, b.clone()),
            (LtlNode::Release(a, b), 1) => Ltl::release(a.clone(), b.replace_rec(rest, new)?),
            _ => return None,
        })
    }

    /// Enumerates every subformula occurrence with its position, polarity
    /// and `X`-depth, in pre-order.
    pub fn positions(&self) -> Vec<Occurrence> {
        let mut out = Vec::new();
        self.walk(Position::root(), Polarity::Positive, 0, 0, &mut out);
        out
    }

    fn walk(&self, pos: Position, pol: Polarity, xd: usize, ud: usize, out: &mut Vec<Occurrence>) {
        out.push(Occurrence {
            position: pos.clone(),
            subformula: self.clone(),
            polarity: pol,
            x_depth: xd,
            unbounded_depth: ud,
        });
        match self.node() {
            LtlNode::True | LtlNode::False | LtlNode::Atom(_) => {}
            LtlNode::Not(f) => f.walk(pos.child(0), pol.flip(), xd, ud, out),
            LtlNode::Next(f) => f.walk(pos.child(0), pol, xd + 1, ud, out),
            LtlNode::Globally(f) | LtlNode::Finally(f) => {
                f.walk(pos.child(0), pol, xd, ud + 1, out)
            }
            LtlNode::And(fs) | LtlNode::Or(fs) => {
                for (i, f) in fs.iter().enumerate() {
                    f.walk(pos.child(i), pol, xd, ud, out);
                }
            }
            LtlNode::Until(a, b) | LtlNode::Release(a, b) => {
                a.walk(pos.child(0), pol, xd, ud + 1, out);
                b.walk(pos.child(1), pol, xd, ud + 1, out);
            }
        }
    }

    /// Occurrences of atomic propositions only (the "variable instances" the
    /// paper's weakening step operates on).
    pub fn atom_occurrences(&self) -> Vec<Occurrence> {
        self.positions()
            .into_iter()
            .filter(|o| matches!(o.subformula.node(), LtlNode::Atom(_)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::SignalTable;

    fn paper_a() -> (Ltl, SignalTable) {
        let mut t = SignalTable::new();
        let f = Ltl::parse("G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))", &mut t).expect("parse");
        (f, t)
    }

    #[test]
    fn subformula_at_walks_paths() {
        let (f, t) = paper_a();
        // G -> child 0 is the implication (an Or).
        let imp = f.subformula_at(&Position::from_path(vec![0])).expect("imp");
        assert!(matches!(imp.node(), LtlNode::Or(_)));
        // Bad paths return None.
        assert!(f.subformula_at(&Position::from_path(vec![5])).is_none());
        let _ = t;
    }

    #[test]
    fn replace_at_swaps_subformula() {
        let (f, mut t) = paper_a();
        let hit = t.intern("hit");
        // Find the r2 occurrence (an atom named r2) and strengthen it to
        // (r2 & X !hit), reproducing the paper's gap property U.
        let occ = f
            .atom_occurrences()
            .into_iter()
            .find(|o| {
                matches!(o.subformula.node(), LtlNode::Atom(id) if t.name(*id) == "r2")
            })
            .expect("r2 occurs");
        let r2 = occ.subformula.clone();
        let strengthened = Ltl::and([
            r2,
            Ltl::next(Ltl::not(Ltl::atom(hit))),
        ]);
        let new = f.replace_at(&occ.position, strengthened).expect("replace");
        assert_eq!(
            new.display(&t).to_string(),
            "G(!wait & r1 & X(r1 U (r2 & X !hit)) -> X(!d2 U d1))"
        );
    }

    #[test]
    fn polarities_respect_negation() {
        let (f, t) = paper_a();
        for occ in f.atom_occurrences() {
            let LtlNode::Atom(id) = occ.subformula.node() else {
                unreachable!()
            };
            match t.name(*id) {
                // Antecedent atoms sit under the implicit negation of `->`.
                "wait" => assert_eq!(occ.polarity, Polarity::Positive), // !wait: two negations
                "r1" | "r2" => assert_eq!(occ.polarity, Polarity::Negative),
                "d2" => assert_eq!(occ.polarity, Polarity::Negative), // !d2 in consequent
                "d1" => assert_eq!(occ.polarity, Polarity::Positive),
                other => panic!("unexpected atom {other}"),
            }
        }
    }

    #[test]
    fn x_depth_counts_next_operators() {
        let mut t = SignalTable::new();
        let f = Ltl::parse("X X p & X q", &mut t).expect("parse");
        let mut depths: Vec<(String, usize)> = f
            .atom_occurrences()
            .into_iter()
            .map(|o| {
                let LtlNode::Atom(id) = o.subformula.node() else {
                    unreachable!()
                };
                (t.name(*id).to_owned(), o.x_depth)
            })
            .collect();
        depths.sort();
        assert_eq!(depths, vec![("p".to_owned(), 2), ("q".to_owned(), 1)]);
    }

    #[test]
    fn replace_at_root() {
        let (f, _t) = paper_a();
        let new = f.replace_at(&Position::root(), Ltl::tt()).expect("root");
        assert_eq!(new, Ltl::tt());
    }
}
