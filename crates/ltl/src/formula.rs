//! The LTL abstract syntax tree.

use dic_logic::{BoolExpr, SignalId, SignalTable};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// An LTL formula.
///
/// `Ltl` is an immutable handle (an `Arc` to the node), so cloning is O(1)
/// and formulas can be shared freely across specs, automata and reports.
/// Equality is structural.
///
/// Constructors apply cheap, local simplifications (constant folding,
/// flattening of `And`/`Or`, double-negation elimination, idempotence of
/// `G`/`F`) but do **not** canonicalize: the paper's gap-representation
/// algorithm depends on preserving the syntactic shape the designer wrote.
///
/// # Example
///
/// ```
/// use dic_logic::SignalTable;
/// use dic_ltl::Ltl;
///
/// let mut t = SignalTable::new();
/// let req = Ltl::atom(t.intern("req"));
/// let grant = Ltl::atom(t.intern("grant"));
/// let prop = Ltl::globally(Ltl::implies(req, Ltl::next(grant)));
/// assert_eq!(prop.display(&t).to_string(), "G(req -> X grant)");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ltl(Arc<LtlNode>);

/// The node type behind [`Ltl`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum LtlNode {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// An atomic proposition (a circuit signal).
    Atom(SignalId),
    /// Negation.
    Not(Ltl),
    /// N-ary conjunction (flattened).
    And(Vec<Ltl>),
    /// N-ary disjunction (flattened).
    Or(Vec<Ltl>),
    /// Next.
    Next(Ltl),
    /// Strong until.
    Until(Ltl, Ltl),
    /// Release (dual of until).
    Release(Ltl, Ltl),
    /// Globally (always).
    Globally(Ltl),
    /// Finally (eventually).
    Finally(Ltl),
}

impl Ltl {
    fn wrap(node: LtlNode) -> Self {
        Ltl(Arc::new(node))
    }

    /// The node behind this handle.
    pub fn node(&self) -> &LtlNode {
        &self.0
    }

    /// Constant true.
    pub fn tt() -> Self {
        Ltl::wrap(LtlNode::True)
    }

    /// Constant false.
    pub fn ff() -> Self {
        Ltl::wrap(LtlNode::False)
    }

    /// An atomic proposition.
    pub fn atom(signal: SignalId) -> Self {
        Ltl::wrap(LtlNode::Atom(signal))
    }

    /// A literal: `signal` or `!signal`.
    pub fn literal(signal: SignalId, positive: bool) -> Self {
        let a = Ltl::atom(signal);
        if positive {
            a
        } else {
            Ltl::not(a)
        }
    }

    /// Negation with double-negation and constant elimination.
    // Named after the connective, like the other smart constructors; this
    // is an associated function, not a method, so it cannot shadow
    // `std::ops::Not::not` at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Ltl) -> Self {
        match f.node() {
            LtlNode::True => Ltl::ff(),
            LtlNode::False => Ltl::tt(),
            LtlNode::Not(inner) => inner.clone(),
            _ => Ltl::wrap(LtlNode::Not(f)),
        }
    }

    /// N-ary conjunction with flattening and constant folding.
    pub fn and<I: IntoIterator<Item = Ltl>>(parts: I) -> Self {
        let mut out: Vec<Ltl> = Vec::new();
        for p in parts {
            match p.node() {
                LtlNode::True => {}
                LtlNode::False => return Ltl::ff(),
                LtlNode::And(inner) => out.extend(inner.iter().cloned()),
                _ => out.push(p),
            }
        }
        match out.len() {
            0 => Ltl::tt(),
            1 => out.pop().expect("len checked"),
            _ => Ltl::wrap(LtlNode::And(out)),
        }
    }

    /// N-ary disjunction with flattening and constant folding.
    pub fn or<I: IntoIterator<Item = Ltl>>(parts: I) -> Self {
        let mut out: Vec<Ltl> = Vec::new();
        for p in parts {
            match p.node() {
                LtlNode::False => {}
                LtlNode::True => return Ltl::tt(),
                LtlNode::Or(inner) => out.extend(inner.iter().cloned()),
                _ => out.push(p),
            }
        }
        match out.len() {
            0 => Ltl::ff(),
            1 => out.pop().expect("len checked"),
            _ => Ltl::wrap(LtlNode::Or(out)),
        }
    }

    /// `a -> b`, kept as `!a | b`.
    pub fn implies(a: Ltl, b: Ltl) -> Self {
        Ltl::or([Ltl::not(a), b])
    }

    /// `a <-> b`, kept as `(a -> b) & (b -> a)`.
    pub fn iff(a: Ltl, b: Ltl) -> Self {
        Ltl::and([
            Ltl::implies(a.clone(), b.clone()),
            Ltl::implies(b, a),
        ])
    }

    /// Next. `X true == true`, `X false == false`.
    pub fn next(f: Ltl) -> Self {
        match f.node() {
            LtlNode::True => Ltl::tt(),
            LtlNode::False => Ltl::ff(),
            _ => Ltl::wrap(LtlNode::Next(f)),
        }
    }

    /// `X^k f`.
    pub fn next_n(mut f: Ltl, k: usize) -> Self {
        for _ in 0..k {
            f = Ltl::next(f);
        }
        f
    }

    /// Strong until with constant folding.
    pub fn until(a: Ltl, b: Ltl) -> Self {
        match (a.node(), b.node()) {
            (_, LtlNode::True) => Ltl::tt(),
            (_, LtlNode::False) => Ltl::ff(),
            (LtlNode::False, _) => b,
            (LtlNode::True, _) => Ltl::finally(b),
            _ => Ltl::wrap(LtlNode::Until(a, b)),
        }
    }

    /// Release with constant folding.
    pub fn release(a: Ltl, b: Ltl) -> Self {
        match (a.node(), b.node()) {
            (_, LtlNode::True) => Ltl::tt(),
            (_, LtlNode::False) => Ltl::ff(),
            (LtlNode::True, _) => b,
            (LtlNode::False, _) => Ltl::globally(b),
            _ => Ltl::wrap(LtlNode::Release(a, b)),
        }
    }

    /// Weak until, desugared: `a W b == (a U b) | G a`.
    pub fn weak_until(a: Ltl, b: Ltl) -> Self {
        Ltl::or([Ltl::until(a.clone(), b), Ltl::globally(a)])
    }

    /// Globally with idempotence (`G G f == G f`) and constants.
    pub fn globally(f: Ltl) -> Self {
        match f.node() {
            LtlNode::True => Ltl::tt(),
            LtlNode::False => Ltl::ff(),
            LtlNode::Globally(_) => f,
            _ => Ltl::wrap(LtlNode::Globally(f)),
        }
    }

    /// Finally with idempotence and constants.
    pub fn finally(f: Ltl) -> Self {
        match f.node() {
            LtlNode::True => Ltl::tt(),
            LtlNode::False => Ltl::ff(),
            LtlNode::Finally(_) => f,
            _ => Ltl::wrap(LtlNode::Finally(f)),
        }
    }

    /// Lifts a Boolean expression into LTL (no temporal operators).
    pub fn from_bool_expr(e: &BoolExpr) -> Self {
        match e {
            BoolExpr::Const(true) => Ltl::tt(),
            BoolExpr::Const(false) => Ltl::ff(),
            BoolExpr::Var(id) => Ltl::atom(*id),
            BoolExpr::Not(inner) => Ltl::not(Ltl::from_bool_expr(inner)),
            BoolExpr::And(es) => Ltl::and(es.iter().map(Ltl::from_bool_expr)),
            BoolExpr::Or(es) => Ltl::or(es.iter().map(Ltl::from_bool_expr)),
            BoolExpr::Xor(a, b) => {
                let la = Ltl::from_bool_expr(a);
                let lb = Ltl::from_bool_expr(b);
                Ltl::or([
                    Ltl::and([la.clone(), Ltl::not(lb.clone())]),
                    Ltl::and([Ltl::not(la), lb]),
                ])
            }
        }
    }

    /// The set of atomic propositions (the paper's `AP_A` / `AP_R`).
    pub fn atoms(&self) -> BTreeSet<SignalId> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<SignalId>) {
        match self.node() {
            LtlNode::True | LtlNode::False => {}
            LtlNode::Atom(id) => {
                out.insert(*id);
            }
            LtlNode::Not(f) | LtlNode::Next(f) | LtlNode::Globally(f) | LtlNode::Finally(f) => {
                f.collect_atoms(out)
            }
            LtlNode::And(fs) | LtlNode::Or(fs) => {
                for f in fs {
                    f.collect_atoms(out);
                }
            }
            LtlNode::Until(a, b) | LtlNode::Release(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self.node() {
            LtlNode::True | LtlNode::False | LtlNode::Atom(_) => 1,
            LtlNode::Not(f) | LtlNode::Next(f) | LtlNode::Globally(f) | LtlNode::Finally(f) => {
                1 + f.size()
            }
            LtlNode::And(fs) | LtlNode::Or(fs) => 1 + fs.iter().map(Ltl::size).sum::<usize>(),
            LtlNode::Until(a, b) | LtlNode::Release(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Whether the formula contains no temporal operator.
    pub fn is_boolean(&self) -> bool {
        match self.node() {
            LtlNode::True | LtlNode::False | LtlNode::Atom(_) => true,
            LtlNode::Not(f) => f.is_boolean(),
            LtlNode::And(fs) | LtlNode::Or(fs) => fs.iter().all(Ltl::is_boolean),
            LtlNode::Next(_)
            | LtlNode::Until(..)
            | LtlNode::Release(..)
            | LtlNode::Globally(_)
            | LtlNode::Finally(_) => false,
        }
    }

    /// Negation normal form: negations pushed down to atoms, keeping
    /// `G`/`F` as first-class operators.
    pub fn nnf(&self) -> Ltl {
        self.nnf_inner(false)
    }

    /// Negation normal form with `G`/`F` expanded into `R`/`U`
    /// (`G f == false R f`, `F f == true U f`) — the input form of the
    /// automaton translation.
    pub fn core_nnf(&self) -> Ltl {
        self.core(false)
    }

    fn nnf_inner(&self, neg: bool) -> Ltl {
        match self.node() {
            LtlNode::True => {
                if neg {
                    Ltl::ff()
                } else {
                    Ltl::tt()
                }
            }
            LtlNode::False => {
                if neg {
                    Ltl::tt()
                } else {
                    Ltl::ff()
                }
            }
            LtlNode::Atom(id) => Ltl::literal(*id, !neg),
            LtlNode::Not(f) => f.nnf_inner(!neg),
            LtlNode::And(fs) => {
                let parts = fs.iter().map(|f| f.nnf_inner(neg));
                if neg {
                    Ltl::or(parts)
                } else {
                    Ltl::and(parts)
                }
            }
            LtlNode::Or(fs) => {
                let parts = fs.iter().map(|f| f.nnf_inner(neg));
                if neg {
                    Ltl::and(parts)
                } else {
                    Ltl::or(parts)
                }
            }
            LtlNode::Next(f) => Ltl::next(f.nnf_inner(neg)),
            LtlNode::Until(a, b) => {
                let na = a.nnf_inner(neg);
                let nb = b.nnf_inner(neg);
                if neg {
                    Ltl::release(na, nb)
                } else {
                    Ltl::until(na, nb)
                }
            }
            LtlNode::Release(a, b) => {
                let na = a.nnf_inner(neg);
                let nb = b.nnf_inner(neg);
                if neg {
                    Ltl::until(na, nb)
                } else {
                    Ltl::release(na, nb)
                }
            }
            LtlNode::Globally(f) => {
                let inner = f.nnf_inner(neg);
                if neg {
                    Ltl::finally(inner)
                } else {
                    Ltl::globally(inner)
                }
            }
            LtlNode::Finally(f) => {
                let inner = f.nnf_inner(neg);
                if neg {
                    Ltl::globally(inner)
                } else {
                    Ltl::finally(inner)
                }
            }
        }
    }

    /// Until without the `true U b == F b` sugar (used by `core_nnf`, whose
    /// whole point is to *remove* `G`/`F`).
    fn until_raw(a: Ltl, b: Ltl) -> Ltl {
        match (a.node(), b.node()) {
            (_, LtlNode::True) => Ltl::tt(),
            (_, LtlNode::False) => Ltl::ff(),
            (LtlNode::False, _) => b,
            _ => Ltl::wrap(LtlNode::Until(a, b)),
        }
    }

    /// Release without the `false R b == G b` sugar.
    fn release_raw(a: Ltl, b: Ltl) -> Ltl {
        match (a.node(), b.node()) {
            (_, LtlNode::True) => Ltl::tt(),
            (_, LtlNode::False) => Ltl::ff(),
            (LtlNode::True, _) => b,
            _ => Ltl::wrap(LtlNode::Release(a, b)),
        }
    }

    fn core(&self, neg: bool) -> Ltl {
        match self.node() {
            LtlNode::Globally(f) => {
                let inner = f.core(neg);
                if neg {
                    Ltl::until_raw(Ltl::tt(), inner)
                } else {
                    Ltl::release_raw(Ltl::ff(), inner)
                }
            }
            LtlNode::Finally(f) => {
                let inner = f.core(neg);
                if neg {
                    Ltl::release_raw(Ltl::ff(), inner)
                } else {
                    Ltl::until_raw(Ltl::tt(), inner)
                }
            }
            LtlNode::Not(f) => f.core(!neg),
            LtlNode::And(fs) => {
                let parts = fs.iter().map(|f| f.core(neg));
                if neg {
                    Ltl::or(parts)
                } else {
                    Ltl::and(parts)
                }
            }
            LtlNode::Or(fs) => {
                let parts = fs.iter().map(|f| f.core(neg));
                if neg {
                    Ltl::and(parts)
                } else {
                    Ltl::or(parts)
                }
            }
            LtlNode::Next(f) => Ltl::next(f.core(neg)),
            LtlNode::Until(a, b) => {
                let ca = a.core(neg);
                let cb = b.core(neg);
                if neg {
                    Ltl::release_raw(ca, cb)
                } else {
                    Ltl::until_raw(ca, cb)
                }
            }
            LtlNode::Release(a, b) => {
                let ca = a.core(neg);
                let cb = b.core(neg);
                if neg {
                    Ltl::until_raw(ca, cb)
                } else {
                    Ltl::release_raw(ca, cb)
                }
            }
            _ => self.nnf_inner(neg),
        }
    }

    /// Renders the formula with signal names.
    pub fn display<'a>(&'a self, table: &'a SignalTable) -> DisplayLtl<'a> {
        DisplayLtl { f: self, table }
    }
}

impl fmt::Debug for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            LtlNode::True => write!(f, "true"),
            LtlNode::False => write!(f, "false"),
            LtlNode::Atom(id) => write!(f, "{id:?}"),
            LtlNode::Not(g) => write!(f, "!{g:?}"),
            LtlNode::And(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            LtlNode::Or(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            LtlNode::Next(g) => write!(f, "X{g:?}"),
            LtlNode::Until(a, b) => write!(f, "({a:?} U {b:?})"),
            LtlNode::Release(a, b) => write!(f, "({a:?} R {b:?})"),
            LtlNode::Globally(g) => write!(f, "G{g:?}"),
            LtlNode::Finally(g) => write!(f, "F{g:?}"),
        }
    }
}

/// Displays an [`Ltl`] with signal names; created by [`Ltl::display`].
///
/// The output reparses to an equal formula (tested); precedence follows the
/// parser: `U`/`R` bind tighter than `&`, which binds tighter than `|`.
pub struct DisplayLtl<'a> {
    f: &'a Ltl,
    table: &'a SignalTable,
}

impl DisplayLtl<'_> {
    /// Recognizes `!a | b` (a desugared implication) so it can be printed
    /// back as `a -> b`, the way the paper writes properties.
    fn as_implication(f: &Ltl) -> Option<(&Ltl, &Ltl)> {
        if let LtlNode::Or(gs) = f.node() {
            if gs.len() == 2 {
                if let LtlNode::Not(ant) = gs[0].node() {
                    return Some((ant, &gs[1]));
                }
            }
        }
        None
    }

    // precedence: Imp=1, Or=2, And=3, Until/Release=4, unary=5, atom=6
    fn prec(f: &Ltl) -> u8 {
        match f.node() {
            LtlNode::Or(_) => {
                if Self::as_implication(f).is_some() {
                    1
                } else {
                    2
                }
            }
            LtlNode::And(_) => 3,
            LtlNode::Until(..) | LtlNode::Release(..) => 4,
            LtlNode::Not(_)
            | LtlNode::Next(_)
            | LtlNode::Globally(_)
            | LtlNode::Finally(_) => 5,
            LtlNode::True | LtlNode::False | LtlNode::Atom(_) => 6,
        }
    }

    fn fmt_prec(&self, f: &Ltl, min: u8, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let my = Self::prec(f);
        let parens = my < min;
        if parens {
            write!(out, "(")?;
        }
        match f.node() {
            LtlNode::True => write!(out, "true")?,
            LtlNode::False => write!(out, "false")?,
            LtlNode::Atom(id) => write!(out, "{}", self.table.name(*id))?,
            LtlNode::Not(g) => {
                write!(out, "!")?;
                self.fmt_prec(g, 5, out)?;
            }
            LtlNode::Next(g) => {
                write!(out, "X")?;
                self.fmt_unary_spaced(g, out)?;
            }
            LtlNode::Globally(g) => {
                write!(out, "G")?;
                self.fmt_unary_spaced(g, out)?;
            }
            LtlNode::Finally(g) => {
                write!(out, "F")?;
                self.fmt_unary_spaced(g, out)?;
            }
            LtlNode::And(gs) => {
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(out, " & ")?;
                    }
                    self.fmt_prec(g, 4, out)?;
                }
            }
            LtlNode::Or(_) if Self::as_implication(f).is_some() => {
                let (ant, cons) = Self::as_implication(f).expect("checked");
                self.fmt_prec(ant, 2, out)?;
                write!(out, " -> ")?;
                self.fmt_prec(cons, 1, out)?; // right associative
            }
            LtlNode::Or(gs) => {
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(out, " | ")?;
                    }
                    self.fmt_prec(g, 3, out)?;
                }
            }
            LtlNode::Until(a, b) => {
                self.fmt_prec(a, 5, out)?;
                write!(out, " U ")?;
                self.fmt_prec(b, 4, out)?; // right associative
            }
            LtlNode::Release(a, b) => {
                self.fmt_prec(a, 5, out)?;
                write!(out, " R ")?;
                self.fmt_prec(b, 4, out)?;
            }
        }
        if parens {
            write!(out, ")")?;
        }
        Ok(())
    }

    /// Argument of `X`/`G`/`F`: parenthesized if weaker-binding, otherwise
    /// separated by a space so stacked operators (`G F p`, `X !q`) do not
    /// lex back as a single identifier.
    fn fmt_unary_spaced(&self, g: &Ltl, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        if Self::prec(g) >= 5 {
            write!(out, " ")?;
            self.fmt_prec(g, 5, out)
        } else {
            write!(out, "(")?;
            self.fmt_prec(g, 0, out)?;
            write!(out, ")")
        }
    }
}

impl fmt::Display for DisplayLtl<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(self.f, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigs() -> (SignalTable, SignalId, SignalId, SignalId) {
        let mut t = SignalTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        let r = t.intern("r");
        (t, p, q, r)
    }

    #[test]
    fn smart_constructors_fold_constants() {
        let (_t, p, ..) = sigs();
        let a = Ltl::atom(p);
        assert_eq!(Ltl::and([Ltl::tt(), a.clone()]), a);
        assert_eq!(Ltl::or([Ltl::ff(), a.clone()]), a);
        assert_eq!(Ltl::until(a.clone(), Ltl::ff()), Ltl::ff());
        assert_eq!(Ltl::until(Ltl::ff(), a.clone()), a);
        assert_eq!(Ltl::until(Ltl::tt(), a.clone()), Ltl::finally(a.clone()));
        assert_eq!(Ltl::release(Ltl::tt(), a.clone()), a);
        assert_eq!(Ltl::release(Ltl::ff(), a.clone()), Ltl::globally(a.clone()));
        assert_eq!(Ltl::globally(Ltl::globally(a.clone())), Ltl::globally(a.clone()));
        assert_eq!(Ltl::not(Ltl::not(a.clone())), a);
        assert_eq!(Ltl::next(Ltl::tt()), Ltl::tt());
    }

    #[test]
    fn nnf_pushes_negations() {
        let (t, p, q, _r) = sigs();
        let f = Ltl::not(Ltl::until(Ltl::atom(p), Ltl::atom(q)));
        let n = f.nnf();
        assert_eq!(n.display(&t).to_string(), "!p R !q");
        let g = Ltl::not(Ltl::globally(Ltl::atom(p)));
        assert_eq!(g.nnf().display(&t).to_string(), "F !p");
    }

    #[test]
    fn core_nnf_removes_g_f() {
        let (t, p, ..) = sigs();
        let f = Ltl::globally(Ltl::finally(Ltl::atom(p)));
        let c = f.core_nnf();
        // U/R are right-associative, so the parens are redundant.
        assert_eq!(c.display(&t).to_string(), "false R true U p");
        // Negated: !GFp == FG!p == true U (false R !p)
        let n = Ltl::not(f).core_nnf();
        assert_eq!(n.display(&t).to_string(), "true U false R !p");
    }

    #[test]
    fn atoms_and_size() {
        let (_t, p, q, r) = sigs();
        let f = Ltl::globally(Ltl::implies(
            Ltl::atom(p),
            Ltl::until(Ltl::atom(q), Ltl::atom(r)),
        ));
        let atoms: Vec<_> = f.atoms().into_iter().collect();
        assert_eq!(atoms, vec![p, q, r]);
        assert!(f.size() >= 6);
        assert!(!f.is_boolean());
        assert!(Ltl::and([Ltl::atom(p), Ltl::atom(q)]).is_boolean());
    }

    #[test]
    fn weak_until_desugars() {
        let (t, p, q, _r) = sigs();
        let w = Ltl::weak_until(Ltl::atom(p), Ltl::atom(q));
        assert_eq!(w.display(&t).to_string(), "p U q | G p");
    }

    #[test]
    fn paper_property_displays() {
        let mut t = SignalTable::new();
        let wait = t.intern("wait");
        let r1 = t.intern("r1");
        let r2 = t.intern("r2");
        let d1 = t.intern("d1");
        let d2 = t.intern("d2");
        // A = G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))
        let a = Ltl::globally(Ltl::implies(
            Ltl::and([
                Ltl::not(Ltl::atom(wait)),
                Ltl::atom(r1),
                Ltl::next(Ltl::until(Ltl::atom(r1), Ltl::atom(r2))),
            ]),
            Ltl::next(Ltl::until(Ltl::not(Ltl::atom(d2)), Ltl::atom(d1))),
        ));
        let s = a.display(&t).to_string();
        assert_eq!(s, "G(!wait & r1 & X(r1 U r2) -> X(!d2 U d1))");
    }
}
