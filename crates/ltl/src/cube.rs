//! Temporal cubes: bounded conjunctions of `X^k literal` terms.
//!
//! The "uncovered terms" `UM` computed by step 2(a) of the paper's
//! Algorithm 1 are exactly of this shape, e.g.
//! `r1 & X r2 & X X !hit & X d1`. A temporal cube of depth `d` is a Boolean
//! cube over *positioned* variables `(signal, time)` with `time <= d`, which
//! lets us reuse the BDD engine for the universal quantification of
//! step 2(b): `∀v. Φ` treats every `(v, t)` instance as an independent
//! Boolean variable, which is sound for bounded formulas.

use crate::formula::Ltl;
use crate::semantics::LassoWord;
use dic_logic::{Bdd, BddManager, Cube, Lit, SignalId, SignalTable};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A positioned literal: `X^time literal`.
pub type TimedLit = (usize, Lit);

/// A conjunction of positioned literals, all distinct and consistent.
///
/// The empty cube is the constant `true`.
///
/// # Example
///
/// ```
/// use dic_logic::{Lit, SignalTable};
/// use dic_ltl::TemporalCube;
///
/// let mut t = SignalTable::new();
/// let r1 = t.intern("r1");
/// let hit = t.intern("hit");
/// let c = TemporalCube::from_lits([(0, Lit::pos(r1)), (2, Lit::neg(hit))])
///     .expect("consistent");
/// assert_eq!(c.display(&t).to_string(), "r1 & XX!hit");
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TemporalCube {
    /// Sorted by (time, signal); at most one literal per (time, signal).
    lits: Vec<TimedLit>,
}

impl TemporalCube {
    /// The empty cube (constant true).
    pub fn top() -> Self {
        TemporalCube::default()
    }

    /// Builds a cube from positioned literals; `None` on contradiction.
    pub fn from_lits<I>(lits: I) -> Option<Self>
    where
        I: IntoIterator<Item = TimedLit>,
    {
        let mut v: Vec<TimedLit> = lits.into_iter().collect();
        v.sort_by_key(|(t, l)| (*t, l.signal(), l.polarity()));
        v.dedup();
        for w in v.windows(2) {
            if w[0].0 == w[1].0 && w[0].1.signal() == w[1].1.signal() {
                return None;
            }
        }
        Some(TemporalCube { lits: v })
    }

    /// Captures the first `depth + 1` positions of a word as a full cube
    /// over `signals`.
    pub fn from_word_prefix(word: &LassoWord, depth: usize, signals: &[SignalId]) -> Self {
        let mut lits = Vec::with_capacity((depth + 1) * signals.len());
        for t in 0..=depth {
            let v = word.at(t);
            for &s in signals {
                lits.push((t, Lit::new(s, v.get(s))));
            }
        }
        TemporalCube { lits }
    }

    /// The positioned literals, sorted by (time, signal).
    pub fn lits(&self) -> &[TimedLit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether this is the constant-true cube.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Largest time offset mentioned (0 for the empty cube).
    pub fn depth(&self) -> usize {
        self.lits.iter().map(|(t, _)| *t).max().unwrap_or(0)
    }

    /// The set of signals mentioned at any offset.
    pub fn signals(&self) -> BTreeSet<SignalId> {
        self.lits.iter().map(|(_, l)| l.signal()).collect()
    }

    /// The cube without the literal at `(time, signal)`, if present.
    pub fn without(&self, time: usize, signal: SignalId) -> Self {
        TemporalCube {
            lits: self
                .lits
                .iter()
                .copied()
                .filter(|(t, l)| !(*t == time && l.signal() == signal))
                .collect(),
        }
    }

    /// The cube without any literal on `signal` (at any offset).
    pub fn without_signal(&self, signal: SignalId) -> Self {
        TemporalCube {
            lits: self
                .lits
                .iter()
                .copied()
                .filter(|(_, l)| l.signal() != signal)
                .collect(),
        }
    }

    /// Conjoins a positioned literal; `None` on contradiction.
    pub fn and_lit(&self, time: usize, lit: Lit) -> Option<Self> {
        let mut lits = self.lits.clone();
        for (t, l) in &lits {
            if *t == time && l.signal() == lit.signal() {
                return if l.polarity() == lit.polarity() {
                    Some(self.clone())
                } else {
                    None
                };
            }
        }
        lits.push((time, lit));
        TemporalCube::from_lits(lits)
    }

    /// Whether the cube holds at position `offset` of the word.
    pub fn holds_on(&self, word: &LassoWord, offset: usize) -> bool {
        self.lits
            .iter()
            .all(|(t, l)| l.eval(word.at(offset + t)))
    }

    /// Converts to an LTL formula `⋀ X^t lit`.
    pub fn to_ltl(&self) -> Ltl {
        Ltl::and(self.lits.iter().map(|(t, l)| {
            Ltl::next_n(Ltl::literal(l.signal(), l.polarity()), *t)
        }))
    }

    /// Renders the cube with signal names (`r1 & XX!hit`).
    pub fn display<'a>(&'a self, table: &'a SignalTable) -> DisplayTemporalCube<'a> {
        DisplayTemporalCube { cube: self, table }
    }
}

impl fmt::Debug for TemporalCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "true");
        }
        for (i, (t, l)) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            for _ in 0..*t {
                write!(f, "X")?;
            }
            write!(f, "{l:?}")?;
        }
        Ok(())
    }
}

/// Displays a [`TemporalCube`]; created by [`TemporalCube::display`].
pub struct DisplayTemporalCube<'a> {
    cube: &'a TemporalCube,
    table: &'a SignalTable,
}

impl fmt::Display for DisplayTemporalCube<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cube.is_empty() {
            return write!(f, "true");
        }
        for (i, (t, l)) in self.cube.lits().iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            for _ in 0..*t {
                write!(f, "X")?;
            }
            write!(f, "{}", l.display(self.table))?;
        }
        Ok(())
    }
}

/// A mapping between positioned `(signal, time)` pairs and fresh BDD signals.
///
/// Bounded temporal formulas are Boolean functions over positioned
/// variables; this table makes that identification explicit so the BDD
/// engine can quantify, simplify and re-extract cubes.
#[derive(Debug, Default)]
pub struct PositionedVars {
    table: SignalTable,
    fwd: HashMap<(SignalId, usize), SignalId>,
    back: HashMap<SignalId, (SignalId, usize)>,
}

impl PositionedVars {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// The positioned variable for `(signal, time)`, created on first use.
    pub fn var(&mut self, signal: SignalId, time: usize) -> SignalId {
        if let Some(&v) = self.fwd.get(&(signal, time)) {
            return v;
        }
        let v = self
            .table
            .intern(&format!("@{}_{}", signal.index(), time));
        self.fwd.insert((signal, time), v);
        self.back.insert(v, (signal, time));
        v
    }

    /// Reverse lookup.
    pub fn origin(&self, var: SignalId) -> Option<(SignalId, usize)> {
        self.back.get(&var).copied()
    }

    /// All positioned variables registered for `signal`.
    pub fn vars_of_signal(&self, signal: SignalId) -> Vec<SignalId> {
        let mut out: Vec<_> = self
            .fwd
            .iter()
            .filter(|((s, _), _)| *s == signal)
            .map(|(_, &v)| v)
            .collect();
        out.sort();
        out
    }

    /// Builds the BDD of a disjunction of temporal cubes.
    pub fn dnf_to_bdd(&mut self, man: &mut BddManager, cubes: &[TemporalCube]) -> Bdd {
        let mut acc = Bdd::FALSE;
        for cube in cubes {
            let mut c = Bdd::TRUE;
            for (t, l) in cube.lits() {
                let v = self.var(l.signal(), *t);
                let bv = man.var_for_signal(v);
                let lit = if l.polarity() { bv } else { man.not(bv) };
                c = man.and(c, lit);
            }
            acc = man.or(acc, c);
        }
        acc
    }

    /// Extracts an irredundant DNF of temporal cubes from a BDD over
    /// positioned variables.
    ///
    /// # Panics
    ///
    /// Panics if the BDD mentions a variable not registered in this mapping.
    pub fn bdd_to_dnf(&self, man: &mut BddManager, f: Bdd) -> Vec<TemporalCube> {
        let cover = man.cubes(f);
        cover
            .into_iter()
            .map(|c: Cube| {
                TemporalCube::from_lits(c.lits().iter().map(|l| {
                    let (sig, t) = self
                        .origin(l.signal())
                        .expect("BDD variable must be positioned");
                    (t, Lit::new(sig, l.polarity()))
                }))
                .expect("cover cubes are consistent")
            })
            .collect()
    }
}

/// Universally quantifies out all instances of `signals` from the
/// disjunction of `cubes`, returning the result as an irredundant DNF.
///
/// This is step 2(b) of Algorithm 1: positioned instances `(v, t)` are
/// treated as independent Boolean variables (sound for bounded formulas),
/// and `∀v. Φ = Φ[v:=0] ∧ Φ[v:=1]` is applied per instance via the BDD.
pub fn forall_eliminate(
    cubes: &[TemporalCube],
    signals: &BTreeSet<SignalId>,
) -> Vec<TemporalCube> {
    quantify_eliminate(cubes, signals, true)
}

/// Existentially quantifies out all instances of `signals`; the dual of
/// [`forall_eliminate`], useful for over-approximating a gap.
pub fn exists_eliminate(
    cubes: &[TemporalCube],
    signals: &BTreeSet<SignalId>,
) -> Vec<TemporalCube> {
    quantify_eliminate(cubes, signals, false)
}

fn quantify_eliminate(
    cubes: &[TemporalCube],
    signals: &BTreeSet<SignalId>,
    universal: bool,
) -> Vec<TemporalCube> {
    let mut man = BddManager::new();
    let mut pv = PositionedVars::new();
    let mut f = pv.dnf_to_bdd(&mut man, cubes);
    for &s in signals {
        for v in pv.vars_of_signal(s) {
            f = if universal {
                man.forall(f, v)
            } else {
                man.exists(f, v)
            };
        }
    }
    pv.bdd_to_dnf(&mut man, f)
}

/// Groups cubes by depth and renders them, for reports.
pub fn display_cubes(cubes: &[TemporalCube], table: &SignalTable) -> String {
    let mut by_len: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for c in cubes {
        by_len
            .entry(c.depth())
            .or_default()
            .push(c.display(table).to_string());
    }
    let mut out = String::new();
    for (_, mut group) in by_len {
        group.sort();
        for g in group {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&g);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::Valuation;

    fn sigs() -> (SignalTable, SignalId, SignalId, SignalId) {
        let mut t = SignalTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let c = t.intern("c");
        (t, a, b, c)
    }

    #[test]
    fn contradiction_detected_per_time() {
        let (_t, a, ..) = sigs();
        assert!(TemporalCube::from_lits([(0, Lit::pos(a)), (0, Lit::neg(a))]).is_none());
        // Same signal at different times is fine.
        assert!(TemporalCube::from_lits([(0, Lit::pos(a)), (1, Lit::neg(a))]).is_some());
    }

    #[test]
    fn to_ltl_matches_cube_semantics() {
        let (t, a, b, _c) = sigs();
        let cube =
            TemporalCube::from_lits([(0, Lit::pos(a)), (1, Lit::neg(b)), (2, Lit::pos(b))])
                .expect("consistent");
        let f = cube.to_ltl();
        // Build a word: a at 0; !b at 1; b at 2; loop.
        let mut s0 = Valuation::all_false(t.len());
        s0.set(a, true);
        let s1 = Valuation::all_false(t.len());
        let mut s2 = Valuation::all_false(t.len());
        s2.set(b, true);
        let w = LassoWord::new(vec![s0, s1, s2], 2).expect("word");
        assert!(cube.holds_on(&w, 0));
        assert!(f.holds_on(&w));
    }

    #[test]
    fn display_format() {
        let (t, a, b, _c) = sigs();
        let cube = TemporalCube::from_lits([(0, Lit::pos(a)), (2, Lit::neg(b))]).unwrap();
        assert_eq!(cube.display(&t).to_string(), "a & XX!b");
        assert_eq!(TemporalCube::top().display(&t).to_string(), "true");
    }

    #[test]
    fn forall_elimination_drops_unconstrained() {
        let (_t, a, b, c) = sigs();
        // Φ = (a & Xb) | (a & X!b): b is a "don't care" → ∀b.Φ = a
        let c1 = TemporalCube::from_lits([(0, Lit::pos(a)), (1, Lit::pos(b))]).unwrap();
        let c2 = TemporalCube::from_lits([(0, Lit::pos(a)), (1, Lit::neg(b))]).unwrap();
        let result = forall_eliminate(&[c1, c2], &BTreeSet::from([b]));
        assert_eq!(result.len(), 1);
        assert_eq!(
            result[0],
            TemporalCube::from_lits([(0, Lit::pos(a))]).unwrap()
        );
        let _ = c;
    }

    #[test]
    fn forall_elimination_kills_essential_vars() {
        let (_t, a, b, _c) = sigs();
        // Φ = a & Xb: ∀b.Φ = false (no cubes).
        let c1 = TemporalCube::from_lits([(0, Lit::pos(a)), (1, Lit::pos(b))]).unwrap();
        let result = forall_eliminate(&[c1], &BTreeSet::from([b]));
        assert!(result.is_empty());
    }

    #[test]
    fn exists_elimination_keeps_scenarios() {
        let (_t, a, b, _c) = sigs();
        let c1 = TemporalCube::from_lits([(0, Lit::pos(a)), (1, Lit::pos(b))]).unwrap();
        let result = exists_eliminate(&[c1], &BTreeSet::from([b]));
        assert_eq!(result.len(), 1);
        assert_eq!(
            result[0],
            TemporalCube::from_lits([(0, Lit::pos(a))]).unwrap()
        );
    }

    #[test]
    fn from_word_prefix_captures_values() {
        let (t, a, b, _c) = sigs();
        let mut s0 = Valuation::all_false(t.len());
        s0.set(a, true);
        let mut s1 = Valuation::all_false(t.len());
        s1.set(b, true);
        let w = LassoWord::new(vec![s0, s1], 1).expect("word");
        let cube = TemporalCube::from_word_prefix(&w, 1, &[a, b]);
        assert_eq!(cube.display(&t).to_string(), "a & !b & X!a & Xb");
    }

    #[test]
    fn and_lit_and_without() {
        let (_t, a, b, _c) = sigs();
        let cube = TemporalCube::from_lits([(0, Lit::pos(a))]).unwrap();
        let cube2 = cube.and_lit(1, Lit::neg(b)).unwrap();
        assert_eq!(cube2.len(), 2);
        assert!(cube2.and_lit(1, Lit::pos(b)).is_none());
        assert_eq!(cube2.without(1, b), cube);
        assert_eq!(cube2.without_signal(b), cube);
    }
}
