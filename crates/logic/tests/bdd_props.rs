//! Property-based tests: the BDD engine against brute-force evaluation of
//! random Boolean expressions over a small variable universe.

use dic_logic::{Bdd, BddManager, BoolExpr, SignalId, SignalTable, Valuation};
use proptest::prelude::*;

const NVARS: usize = 5;

fn universe() -> (SignalTable, Vec<SignalId>) {
    let mut t = SignalTable::new();
    let ids = (0..NVARS).map(|i| t.intern(&format!("v{i}"))).collect();
    (t, ids)
}

/// A recursive strategy for random Boolean expressions over `v0..v4`.
fn arb_expr(ids: Vec<SignalId>) -> impl Strategy<Value = BoolExpr> {
    let leaf = prop_oneof![
        Just(BoolExpr::tt()),
        Just(BoolExpr::ff()),
        (0..ids.len()).prop_map(move |i| BoolExpr::var(ids[i])),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(BoolExpr::not),
            prop::collection::vec(inner.clone(), 1..4).prop_map(BoolExpr::and),
            prop::collection::vec(inner.clone(), 1..4).prop_map(BoolExpr::or),
            (inner.clone(), inner).prop_map(|(a, b)| BoolExpr::xor(a, b)),
        ]
    })
}

fn assert_equiv(man: &BddManager, f: Bdd, e: &BoolExpr, ids: &[SignalId], len: usize) {
    for bits in 0..(1u64 << NVARS) {
        let mut v = Valuation::all_false(len);
        v.assign_key(ids, bits);
        assert_eq!(man.eval(f, &v), e.eval(&v), "disagreement at {bits:05b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_brute_force(e in universe().1.pipe_expr()) {
        let (t, ids) = universe();
        let mut man = BddManager::new();
        let f = man.from_expr(&e);
        assert_equiv(&man, f, &e, &ids, t.len());
    }

    #[test]
    fn negation_is_involution(e in universe().1.pipe_expr()) {
        let mut man = BddManager::new();
        let f = man.from_expr(&e);
        let nf = man.not(f);
        let nnf = man.not(nf);
        prop_assert_eq!(f, nnf);
    }

    #[test]
    fn shannon_expansion_holds(e in universe().1.pipe_expr()) {
        let (_t, ids) = universe();
        let mut man = BddManager::new();
        let f = man.from_expr(&e);
        let s = ids[0];
        let v = man.var_for_signal(s);
        let f1 = man.restrict(f, s, true);
        let f0 = man.restrict(f, s, false);
        let rebuilt = man.ite(v, f1, f0);
        prop_assert_eq!(f, rebuilt);
    }

    #[test]
    fn quantifier_duality(e in universe().1.pipe_expr()) {
        // ∀x.f == ¬∃x.¬f
        let (_t, ids) = universe();
        let mut man = BddManager::new();
        let f = man.from_expr(&e);
        let s = ids[1];
        let all = man.forall(f, s);
        let nf = man.not(f);
        let ex = man.exists(nf, s);
        let dual = man.not(ex);
        prop_assert_eq!(all, dual);
    }

    #[test]
    fn isop_cover_rebuilds_function(e in universe().1.pipe_expr()) {
        let mut man = BddManager::new();
        let f = man.from_expr(&e);
        let cover = man.cubes(f);
        let mut back = Bdd::FALSE;
        for cube in &cover {
            let cb = man.from_cube(cube);
            back = man.or(back, cb);
        }
        prop_assert_eq!(back, f);
    }

    #[test]
    fn to_expr_round_trips(e in universe().1.pipe_expr()) {
        let mut man = BddManager::new();
        let f = man.from_expr(&e);
        let back = man.to_expr(f);
        let f2 = man.from_expr(&back);
        prop_assert_eq!(f, f2);
    }

    #[test]
    fn sat_count_matches_truth_table(e in universe().1.pipe_expr()) {
        let (t, ids) = universe();
        let mut man = BddManager::new();
        let f = man.from_expr(&e);
        // Register all universe variables so counting is over NVARS vars.
        for &id in &ids {
            man.var_for_signal(id);
        }
        let mut expected = 0u128;
        for bits in 0..(1u64 << NVARS) {
            let mut v = Valuation::all_false(t.len());
            v.assign_key(&ids, bits);
            if e.eval(&v) {
                expected += 1;
            }
        }
        prop_assert_eq!(man.sat_count(f, NVARS as u32), expected);
    }

    #[test]
    fn complement_edges_evaluate_as_negation(e in universe().1.pipe_expr()) {
        // The complement-edge representation must be invisible
        // semantically: ¬f evaluates to the pointwise negation of f, is
        // free (no new nodes), and shares f's entire node set.
        let (t, ids) = universe();
        let mut man = BddManager::new();
        let f = man.from_expr(&e);
        let before = man.node_count();
        let nf = man.not(f);
        prop_assert_eq!(man.node_count(), before, "negation allocated nodes");
        prop_assert_eq!(man.size(f), man.size(nf), "f and ¬f must share structure");
        for bits in 0..(1u64 << NVARS) {
            let mut v = Valuation::all_false(t.len());
            v.assign_key(&ids, bits);
            prop_assert_eq!(man.eval(nf, &v), !man.eval(f, &v));
        }
    }

    #[test]
    fn isop_cover_rebuilds_complemented_roots(e in universe().1.pipe_expr()) {
        // Cube extraction must see through the complement bit: the ISOP
        // cover of ¬f (a complemented edge whenever f is regular) must
        // rebuild exactly ¬f.
        let mut man = BddManager::new();
        let f = man.from_expr(&e);
        let nf = man.not(f);
        let cover = man.cubes(nf);
        let mut back = Bdd::FALSE;
        for cube in &cover {
            let cb = man.from_cube(cube);
            back = man.or(back, cb);
        }
        prop_assert_eq!(back, nf);
    }

    #[test]
    fn sat_counts_of_f_and_not_f_partition_the_space(e in universe().1.pipe_expr()) {
        // Complement edges count independently (no 2^n - count shortcut);
        // the two counts must still tile the whole valuation space.
        let (_t, ids) = universe();
        let mut man = BddManager::new();
        let f = man.from_expr(&e);
        for &id in &ids {
            man.var_for_signal(id);
        }
        let nf = man.not(f);
        let total = man.sat_count(f, NVARS as u32) + man.sat_count(nf, NVARS as u32);
        prop_assert_eq!(total, 1u128 << NVARS);
    }

    #[test]
    fn parser_printer_round_trip(e in universe().1.pipe_expr()) {
        let (mut t, ids) = universe();
        let shown = e.display(&t).to_string();
        let reparsed = BoolExpr::parse(&shown, &mut t).expect("printer output parses");
        let mut man = BddManager::new();
        let f1 = man.from_expr(&e);
        let f2 = man.from_expr(&reparsed);
        prop_assert_eq!(f1, f2, "printed form {} changed meaning", shown);
        let _ = ids;
    }
}

/// Helper extension so strategies can be built from the id vector concisely.
trait PipeExpr {
    fn pipe_expr(self) -> BoxedStrategy<BoolExpr>;
}

impl PipeExpr for Vec<SignalId> {
    fn pipe_expr(self) -> BoxedStrategy<BoolExpr> {
        arb_expr(self).boxed()
    }
}
