//! Boolean expression AST.

use crate::signal::{SignalId, SignalTable};
use crate::valuation::Valuation;
use std::collections::BTreeSet;
use std::fmt;

/// A Boolean expression over interned signals.
///
/// Used to describe combinational gate functions in netlists and the Boolean
/// layer of temporal formulas. Constructors perform light simplification
/// (constant folding, flattening of nested `And`/`Or`, double-negation
/// elimination) but expressions are *not* canonical — use
/// [`BddManager::from_expr`](crate::BddManager::from_expr) for canonical
/// comparison.
///
/// # Example
///
/// ```
/// use dic_logic::{BoolExpr, SignalTable, Valuation};
///
/// let mut t = SignalTable::new();
/// let a = t.intern("a");
/// let b = t.intern("b");
/// let e = BoolExpr::and([BoolExpr::var(a), BoolExpr::var(b).not()]);
/// let mut v = Valuation::all_false(t.len());
/// v.set(a, true);
/// assert!(e.eval(&v));
/// assert_eq!(e.display(&t).to_string(), "a & !b");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// Constant true/false.
    Const(bool),
    /// A signal.
    Var(SignalId),
    /// Negation.
    Not(Box<BoolExpr>),
    /// N-ary conjunction (flattened, never nested `And` directly inside).
    And(Vec<BoolExpr>),
    /// N-ary disjunction (flattened).
    Or(Vec<BoolExpr>),
    /// Exclusive or.
    Xor(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// The constant `true`.
    pub fn tt() -> Self {
        BoolExpr::Const(true)
    }

    /// The constant `false`.
    pub fn ff() -> Self {
        BoolExpr::Const(false)
    }

    /// The constant value of this expression, if it is one.
    pub fn as_const(&self) -> Option<bool> {
        match self {
            BoolExpr::Const(b) => Some(*b),
            _ => None,
        }
    }

    /// A signal variable.
    pub fn var(id: SignalId) -> Self {
        BoolExpr::Var(id)
    }

    /// Negation with double-negation and constant elimination.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            BoolExpr::Const(b) => BoolExpr::Const(!b),
            BoolExpr::Not(inner) => *inner,
            e => BoolExpr::Not(Box::new(e)),
        }
    }

    /// N-ary conjunction with flattening and constant folding.
    pub fn and<I: IntoIterator<Item = BoolExpr>>(parts: I) -> Self {
        let mut out = Vec::new();
        for p in parts {
            match p {
                BoolExpr::Const(true) => {}
                BoolExpr::Const(false) => return BoolExpr::ff(),
                BoolExpr::And(inner) => out.extend(inner),
                e => out.push(e),
            }
        }
        match out.len() {
            0 => BoolExpr::tt(),
            1 => out.pop().expect("len checked"),
            _ => BoolExpr::And(out),
        }
    }

    /// N-ary disjunction with flattening and constant folding.
    pub fn or<I: IntoIterator<Item = BoolExpr>>(parts: I) -> Self {
        let mut out = Vec::new();
        for p in parts {
            match p {
                BoolExpr::Const(false) => {}
                BoolExpr::Const(true) => return BoolExpr::tt(),
                BoolExpr::Or(inner) => out.extend(inner),
                e => out.push(e),
            }
        }
        match out.len() {
            0 => BoolExpr::ff(),
            1 => out.pop().expect("len checked"),
            _ => BoolExpr::Or(out),
        }
    }

    /// Exclusive or with constant folding.
    pub fn xor(a: BoolExpr, b: BoolExpr) -> Self {
        match (a, b) {
            (BoolExpr::Const(x), BoolExpr::Const(y)) => BoolExpr::Const(x ^ y),
            (BoolExpr::Const(false), e) | (e, BoolExpr::Const(false)) => e,
            (BoolExpr::Const(true), e) | (e, BoolExpr::Const(true)) => e.not(),
            (a, b) => BoolExpr::Xor(Box::new(a), Box::new(b)),
        }
    }

    /// `a -> b`, desugared to `!a | b`.
    pub fn implies(a: BoolExpr, b: BoolExpr) -> Self {
        BoolExpr::or([a.not(), b])
    }

    /// `a <-> b`, desugared to `!(a ^ b)`.
    pub fn iff(a: BoolExpr, b: BoolExpr) -> Self {
        BoolExpr::xor(a, b).not()
    }

    /// Evaluates under a full valuation.
    ///
    /// # Panics
    ///
    /// Panics if the expression mentions a signal outside the valuation.
    pub fn eval(&self, v: &Valuation) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Var(id) => v.get(*id),
            BoolExpr::Not(e) => !e.eval(v),
            BoolExpr::And(es) => es.iter().all(|e| e.eval(v)),
            BoolExpr::Or(es) => es.iter().any(|e| e.eval(v)),
            BoolExpr::Xor(a, b) => a.eval(v) ^ b.eval(v),
        }
    }

    /// The set of signals mentioned by this expression.
    pub fn support(&self) -> BTreeSet<SignalId> {
        let mut out = BTreeSet::new();
        self.collect_support(&mut out);
        out
    }

    fn collect_support(&self, out: &mut BTreeSet<SignalId>) {
        match self {
            BoolExpr::Const(_) => {}
            BoolExpr::Var(id) => {
                out.insert(*id);
            }
            BoolExpr::Not(e) => e.collect_support(out),
            BoolExpr::And(es) | BoolExpr::Or(es) => {
                for e in es {
                    e.collect_support(out);
                }
            }
            BoolExpr::Xor(a, b) => {
                a.collect_support(out);
                b.collect_support(out);
            }
        }
    }

    /// Substitutes constant `value` for `signal` and re-simplifies.
    pub fn assign(&self, signal: SignalId, value: bool) -> BoolExpr {
        match self {
            BoolExpr::Const(_) => self.clone(),
            BoolExpr::Var(id) => {
                if *id == signal {
                    BoolExpr::Const(value)
                } else {
                    self.clone()
                }
            }
            BoolExpr::Not(e) => e.assign(signal, value).not(),
            BoolExpr::And(es) => BoolExpr::and(es.iter().map(|e| e.assign(signal, value))),
            BoolExpr::Or(es) => BoolExpr::or(es.iter().map(|e| e.assign(signal, value))),
            BoolExpr::Xor(a, b) => {
                BoolExpr::xor(a.assign(signal, value), b.assign(signal, value))
            }
        }
    }

    /// Renders with signal names; see [`BoolExpr`] docs for the syntax.
    pub fn display<'a>(&'a self, table: &'a SignalTable) -> DisplayBoolExpr<'a> {
        DisplayBoolExpr { expr: self, table }
    }

    /// Number of AST nodes (a rough size metric used by benchmarks).
    pub fn size(&self) -> usize {
        match self {
            BoolExpr::Const(_) | BoolExpr::Var(_) => 1,
            BoolExpr::Not(e) => 1 + e.size(),
            BoolExpr::And(es) | BoolExpr::Or(es) => 1 + es.iter().map(BoolExpr::size).sum::<usize>(),
            BoolExpr::Xor(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Debug for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Const(b) => write!(f, "{b}"),
            BoolExpr::Var(id) => write!(f, "{id:?}"),
            BoolExpr::Not(e) => write!(f, "!{e:?}"),
            BoolExpr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{e:?}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{e:?}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Xor(a, b) => write!(f, "({a:?} ^ {b:?})"),
        }
    }
}

/// Displays a [`BoolExpr`] with signal names; created by
/// [`BoolExpr::display`].
pub struct DisplayBoolExpr<'a> {
    expr: &'a BoolExpr,
    table: &'a SignalTable,
}

impl DisplayBoolExpr<'_> {
    fn fmt_prec(&self, e: &BoolExpr, prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // precedence: Or=1, Xor=2, And=3, Not/atom=4
        let my = match e {
            BoolExpr::Or(_) => 1,
            BoolExpr::Xor(..) => 2,
            BoolExpr::And(_) => 3,
            _ => 4,
        };
        let parens = my < prec;
        if parens {
            write!(f, "(")?;
        }
        match e {
            BoolExpr::Const(b) => write!(f, "{}", if *b { "true" } else { "false" })?,
            BoolExpr::Var(id) => write!(f, "{}", self.table.name(*id))?,
            BoolExpr::Not(inner) => {
                write!(f, "!")?;
                self.fmt_prec(inner, 4, f)?;
            }
            BoolExpr::And(es) => {
                for (i, part) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    self.fmt_prec(part, 4, f)?;
                }
            }
            BoolExpr::Or(es) => {
                for (i, part) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    self.fmt_prec(part, 2, f)?;
                }
            }
            BoolExpr::Xor(a, b) => {
                self.fmt_prec(a, 3, f)?;
                write!(f, " ^ ")?;
                self.fmt_prec(b, 3, f)?;
            }
        }
        if parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for DisplayBoolExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(self.expr, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigs() -> (SignalTable, SignalId, SignalId, SignalId) {
        let mut t = SignalTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let c = t.intern("c");
        (t, a, b, c)
    }

    #[test]
    fn constant_folding() {
        let (_t, a, ..) = sigs();
        assert_eq!(BoolExpr::and([BoolExpr::tt(), BoolExpr::var(a)]), BoolExpr::var(a));
        assert_eq!(BoolExpr::and([BoolExpr::ff(), BoolExpr::var(a)]), BoolExpr::ff());
        assert_eq!(BoolExpr::or([BoolExpr::ff()]), BoolExpr::ff());
        assert_eq!(BoolExpr::or([BoolExpr::tt(), BoolExpr::var(a)]), BoolExpr::tt());
        assert_eq!(BoolExpr::var(a).not().not(), BoolExpr::var(a));
        assert_eq!(BoolExpr::xor(BoolExpr::tt(), BoolExpr::var(a)), BoolExpr::var(a).not());
    }

    #[test]
    fn and_flattens() {
        let (_t, a, b, c) = sigs();
        let nested = BoolExpr::and([
            BoolExpr::and([BoolExpr::var(a), BoolExpr::var(b)]),
            BoolExpr::var(c),
        ]);
        match nested {
            BoolExpr::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn eval_matches_semantics() {
        let (t, a, b, c) = sigs();
        let e = BoolExpr::or([
            BoolExpr::and([BoolExpr::var(a), BoolExpr::var(b).not()]),
            BoolExpr::xor(BoolExpr::var(b), BoolExpr::var(c)),
        ]);
        for bits in 0..8u64 {
            let mut v = Valuation::all_false(t.len());
            v.assign_key(&[a, b, c], bits);
            let (va, vb, vc) = (v.get(a), v.get(b), v.get(c));
            assert_eq!(e.eval(&v), (va && !vb) || (vb ^ vc));
        }
    }

    #[test]
    fn implies_and_iff_desugar() {
        let (t, a, b, _c) = sigs();
        let imp = BoolExpr::implies(BoolExpr::var(a), BoolExpr::var(b));
        let iff = BoolExpr::iff(BoolExpr::var(a), BoolExpr::var(b));
        for bits in 0..4u64 {
            let mut v = Valuation::all_false(t.len());
            v.assign_key(&[a, b], bits);
            assert_eq!(imp.eval(&v), !v.get(a) | v.get(b));
            assert_eq!(iff.eval(&v), v.get(a) == v.get(b));
        }
    }

    #[test]
    fn support_and_assign() {
        let (_t, a, b, c) = sigs();
        let e = BoolExpr::and([BoolExpr::var(a), BoolExpr::or([BoolExpr::var(b), BoolExpr::var(c)])]);
        assert_eq!(e.support().into_iter().collect::<Vec<_>>(), vec![a, b, c]);
        let e2 = e.assign(a, true);
        assert_eq!(e2.support().into_iter().collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(e.assign(a, false), BoolExpr::ff());
    }

    #[test]
    fn display_respects_precedence() {
        let (t, a, b, c) = sigs();
        let e = BoolExpr::and([
            BoolExpr::or([BoolExpr::var(a), BoolExpr::var(b)]),
            BoolExpr::var(c).not(),
        ]);
        assert_eq!(e.display(&t).to_string(), "(a | b) & !c");
    }
}
