//! Parser for [`BoolExpr`].
//!
//! Grammar (loosest to tightest binding):
//!
//! ```text
//! iff   := imp ("<->" imp)*
//! imp   := or ("->" imp)?            // right associative
//! or    := xor ("|" xor)*
//! xor   := and ("^" and)*
//! and   := unary ("&" unary)*
//! unary := "!" unary | atom
//! atom  := ident | "true" | "false" | "1" | "0" | "(" iff ")"
//! ```
//!
//! Identifiers match `[A-Za-z_][A-Za-z0-9_.\[\]]*`, which is enough for
//! flattened hierarchical names like `u1.q` or `data[3]`.

use crate::expr::BoolExpr;
use crate::signal::SignalTable;
use std::error::Error;
use std::fmt;

/// Error produced when parsing a Boolean expression fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBoolExprError {
    /// Byte offset in the input where the error occurred.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseBoolExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl Error for ParseBoolExprError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    True,
    False,
    Not,
    And,
    Or,
    Xor,
    Imp,
    Iff,
    LParen,
    RParen,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseBoolExprError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            '!' | '~' => {
                toks.push((i, Tok::Not));
                i += 1;
            }
            '&' => {
                toks.push((i, Tok::And));
                i += if src[i..].starts_with("&&") { 2 } else { 1 };
            }
            '|' => {
                toks.push((i, Tok::Or));
                i += if src[i..].starts_with("||") { 2 } else { 1 };
            }
            '^' => {
                toks.push((i, Tok::Xor));
                i += 1;
            }
            '-' => {
                if src[i..].starts_with("->") {
                    toks.push((i, Tok::Imp));
                    i += 2;
                } else {
                    return Err(ParseBoolExprError {
                        position: i,
                        message: "expected '->'".into(),
                    });
                }
            }
            '<' => {
                if src[i..].starts_with("<->") {
                    toks.push((i, Tok::Iff));
                    i += 3;
                } else {
                    return Err(ParseBoolExprError {
                        position: i,
                        message: "expected '<->'".into(),
                    });
                }
            }
            '0' => {
                toks.push((i, Tok::False));
                i += 1;
            }
            '1' => {
                toks.push((i, Tok::True));
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || matches!(d, '_' | '.' | '[' | ']') {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..i];
                toks.push((
                    start,
                    match word {
                        "true" => Tok::True,
                        "false" => Tok::False,
                        _ => Tok::Ident(word.to_owned()),
                    },
                ));
            }
            other => {
                return Err(ParseBoolExprError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    table: &'a mut SignalTable,
    src_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseBoolExprError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseBoolExprError {
                position: self.here(),
                message: format!("expected {what}"),
            })
        }
    }

    fn iff(&mut self) -> Result<BoolExpr, ParseBoolExprError> {
        let mut lhs = self.imp()?;
        while self.peek() == Some(&Tok::Iff) {
            self.pos += 1;
            let rhs = self.imp()?;
            lhs = BoolExpr::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn imp(&mut self) -> Result<BoolExpr, ParseBoolExprError> {
        let lhs = self.or()?;
        if self.peek() == Some(&Tok::Imp) {
            self.pos += 1;
            let rhs = self.imp()?; // right associative
            Ok(BoolExpr::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<BoolExpr, ParseBoolExprError> {
        let mut parts = vec![self.xor()?];
        while self.peek() == Some(&Tok::Or) {
            self.pos += 1;
            parts.push(self.xor()?);
        }
        Ok(BoolExpr::or(parts))
    }

    fn xor(&mut self) -> Result<BoolExpr, ParseBoolExprError> {
        let mut lhs = self.and()?;
        while self.peek() == Some(&Tok::Xor) {
            self.pos += 1;
            let rhs = self.and()?;
            lhs = BoolExpr::xor(lhs, rhs);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<BoolExpr, ParseBoolExprError> {
        let mut parts = vec![self.unary()?];
        while self.peek() == Some(&Tok::And) {
            self.pos += 1;
            parts.push(self.unary()?);
        }
        Ok(BoolExpr::and(parts))
    }

    fn unary(&mut self) -> Result<BoolExpr, ParseBoolExprError> {
        if self.peek() == Some(&Tok::Not) {
            self.pos += 1;
            return Ok(self.unary()?.not());
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<BoolExpr, ParseBoolExprError> {
        let position = self.here();
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(BoolExpr::var(self.table.intern(&name))),
            Some(Tok::True) => Ok(BoolExpr::tt()),
            Some(Tok::False) => Ok(BoolExpr::ff()),
            Some(Tok::LParen) => {
                let e = self.iff()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            other => Err(ParseBoolExprError {
                position,
                message: format!("expected an atom, found {other:?}"),
            }),
        }
    }
}

impl BoolExpr {
    /// Parses a Boolean expression, interning signal names in `table`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBoolExprError`] on malformed input; the error carries
    /// the byte offset of the failure.
    ///
    /// # Example
    ///
    /// ```
    /// use dic_logic::{BoolExpr, SignalTable};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut t = SignalTable::new();
    /// let e = BoolExpr::parse("grant -> req & !stall", &mut t)?;
    /// assert_eq!(e.support().len(), 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(src: &str, table: &mut SignalTable) -> Result<BoolExpr, ParseBoolExprError> {
        let toks = lex(src)?;
        let mut p = Parser {
            toks,
            pos: 0,
            table,
            src_len: src.len(),
        };
        let e = p.iff()?;
        if p.pos != p.toks.len() {
            return Err(ParseBoolExprError {
                position: p.here(),
                message: "trailing input".into(),
            });
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valuation::Valuation;

    fn eval_str(src: &str, assigns: &[(&str, bool)]) -> bool {
        let mut t = SignalTable::new();
        let e = BoolExpr::parse(src, &mut t).expect("parse");
        let mut v = Valuation::all_false(t.len().max(assigns.len()));
        for (name, val) in assigns {
            if let Some(id) = t.lookup(name) {
                v.set(id, *val);
            }
        }
        e.eval(&v)
    }

    #[test]
    fn precedence_and_over_or() {
        assert!(eval_str("a | b & c", &[("a", true), ("b", false), ("c", false)]));
        assert!(!eval_str("(a | b) & c", &[("a", true), ("b", false), ("c", false)]));
    }

    #[test]
    fn implication_right_assoc() {
        // a -> b -> c  ==  a -> (b -> c); with a=1,b=0 it's true
        assert!(eval_str("a -> b -> c", &[("a", true), ("b", false), ("c", false)]));
    }

    #[test]
    fn iff_and_xor() {
        assert!(eval_str("a <-> b", &[("a", true), ("b", true)]));
        assert!(!eval_str("a ^ b", &[("a", true), ("b", true)]));
    }

    #[test]
    fn constants_and_negation() {
        assert!(eval_str("!false & true & !0 & 1", &[]));
        assert!(eval_str("~a", &[("a", false)]));
    }

    #[test]
    fn verilog_style_operators() {
        assert!(eval_str("a && b || !c", &[("a", true), ("b", true), ("c", true)]));
    }

    #[test]
    fn hierarchical_names() {
        let mut t = SignalTable::new();
        let e = BoolExpr::parse("u1.q & data[3]", &mut t).expect("parse");
        assert!(t.lookup("u1.q").is_some());
        assert!(t.lookup("data[3]").is_some());
        assert_eq!(e.support().len(), 2);
    }

    #[test]
    fn error_reports_position() {
        let mut t = SignalTable::new();
        let err = BoolExpr::parse("a & ", &mut t).unwrap_err();
        assert_eq!(err.position, 4);
        let err = BoolExpr::parse("a @ b", &mut t).unwrap_err();
        assert_eq!(err.position, 2);
    }

    #[test]
    fn trailing_input_rejected() {
        let mut t = SignalTable::new();
        assert!(BoolExpr::parse("a b", &mut t).is_err());
        assert!(BoolExpr::parse("(a", &mut t).is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let mut t = SignalTable::new();
        let e = BoolExpr::parse("(a | !b) & (c ^ d) & !(e & f)", &mut t).expect("parse");
        let shown = e.display(&t).to_string();
        let e2 = BoolExpr::parse(&shown, &mut t).expect("reparse");
        // Compare by truth table over the 6 variables.
        let ids: Vec<_> = t.ids().collect();
        for bits in 0..64u64 {
            let mut v = Valuation::all_false(t.len());
            v.assign_key(&ids, bits);
            assert_eq!(e.eval(&v), e2.eval(&v), "mismatch under {v:?}");
        }
    }
}
