//! Boolean substrate for the SpecMatcher design-intent-coverage toolkit.
//!
//! This crate provides everything "below temporal logic":
//!
//! * [`SignalTable`] / [`SignalId`] — interned circuit signal names shared by
//!   every other crate in the workspace,
//! * [`Valuation`] — a dense assignment of Boolean values to signals (the
//!   "state as a valuation of the signals" of the paper's Definition 1),
//! * [`Lit`] and [`Cube`] — literals and conjunctions of literals,
//! * [`BoolExpr`] — a Boolean expression AST with an evaluator and a parser,
//! * [`Bdd`] / [`BddManager`] — a reduced ordered binary decision diagram
//!   engine with quantification and irredundant sum-of-products extraction
//!   (used for FSM input-cube merging and for the universal quantification
//!   step 2(b) of the paper's Algorithm 1).
//!
//! # Example
//!
//! ```
//! use dic_logic::{BddManager, BoolExpr, SignalTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sigs = SignalTable::new();
//! let a = sigs.intern("a");
//! let b = sigs.intern("b");
//!
//! let expr = BoolExpr::parse("a & !b | b & !a", &mut sigs)?;
//!
//! let mut man = BddManager::new();
//! let f = man.from_expr(&expr);
//! let va = man.var_for_signal(a);
//! let vb = man.var_for_signal(b);
//! let g = man.xor(va, vb);
//! assert_eq!(f, g); // BDDs are canonical
//! # Ok(())
//! # }
//! ```

pub mod bdd;
pub mod cube;
pub mod expr;
pub mod parse;
pub mod reorder;
pub mod signal;
pub mod valuation;

pub use bdd::{Bdd, BddCheckpoint, BddManager, PairingId, VarSetId};
pub use reorder::{ReorderGroup, ReorderOutcome};
pub use cube::{Cube, Lit};
pub use expr::BoolExpr;
pub use parse::ParseBoolExprError;
pub use signal::{SignalId, SignalTable};
pub use valuation::Valuation;
