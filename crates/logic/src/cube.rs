//! Literals and cubes (conjunctions of literals).

use crate::signal::{SignalId, SignalTable};
use crate::valuation::Valuation;
use std::fmt;

/// A signal literal: a signal or its negation.
///
/// # Example
///
/// ```
/// use dic_logic::{Lit, SignalTable};
///
/// let mut t = SignalTable::new();
/// let a = t.intern("a");
/// let l = Lit::neg(a);
/// assert_eq!(l.signal(), a);
/// assert!(!l.polarity());
/// assert_eq!(l.negated(), Lit::pos(a));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit {
    signal: SignalId,
    positive: bool,
}

impl Lit {
    /// The positive literal of `signal`.
    pub fn pos(signal: SignalId) -> Self {
        Lit {
            signal,
            positive: true,
        }
    }

    /// The negative literal of `signal`.
    pub fn neg(signal: SignalId) -> Self {
        Lit {
            signal,
            positive: false,
        }
    }

    /// A literal with explicit polarity.
    pub fn new(signal: SignalId, positive: bool) -> Self {
        Lit { signal, positive }
    }

    /// The underlying signal.
    pub fn signal(self) -> SignalId {
        self.signal
    }

    /// `true` for the positive literal, `false` for the negated one.
    pub fn polarity(self) -> bool {
        self.positive
    }

    /// The literal of the same signal with opposite polarity.
    pub fn negated(self) -> Self {
        Lit {
            signal: self.signal,
            positive: !self.positive,
        }
    }

    /// Evaluates the literal under `v`.
    pub fn eval(self, v: &Valuation) -> bool {
        v.get(self.signal) == self.positive
    }

    /// Renders the literal with its signal name (`a` or `!a`).
    pub fn display<'a>(&'a self, table: &'a SignalTable) -> DisplayLit<'a> {
        DisplayLit { lit: self, table }
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "!")?;
        }
        write!(f, "{:?}", self.signal)
    }
}

/// Displays a [`Lit`] with its signal name; created by [`Lit::display`].
pub struct DisplayLit<'a> {
    lit: &'a Lit,
    table: &'a SignalTable,
}

impl fmt::Display for DisplayLit<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.lit.positive {
            write!(f, "!")?;
        }
        write!(f, "{}", self.table.name(self.lit.signal))
    }
}

/// A cube: a consistent conjunction of literals over distinct signals.
///
/// The empty cube is the constant *true*. Construction deduplicates literals
/// and rejects contradictions (`a ∧ ¬a`).
///
/// # Example
///
/// ```
/// use dic_logic::{Cube, Lit, SignalTable};
///
/// let mut t = SignalTable::new();
/// let a = t.intern("a");
/// let b = t.intern("b");
/// let c = Cube::from_lits([Lit::pos(a), Lit::neg(b)]).expect("consistent");
/// assert_eq!(c.len(), 2);
/// assert!(Cube::from_lits([Lit::pos(a), Lit::neg(a)]).is_none());
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cube {
    /// Sorted by signal, one literal per signal.
    lits: Vec<Lit>,
}

impl Cube {
    /// The empty cube (constant true).
    pub fn top() -> Self {
        Cube::default()
    }

    /// Builds a cube from literals, deduplicating; returns `None` on a
    /// contradiction.
    pub fn from_lits<I>(lits: I) -> Option<Self>
    where
        I: IntoIterator<Item = Lit>,
    {
        let mut v: Vec<Lit> = lits.into_iter().collect();
        v.sort();
        v.dedup();
        for w in v.windows(2) {
            if w[0].signal() == w[1].signal() {
                return None; // same signal, both polarities
            }
        }
        Some(Cube { lits: v })
    }

    /// The literals, sorted by signal.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether this is the empty cube (constant true).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// The polarity of `signal` in this cube, if constrained.
    pub fn polarity_of(&self, signal: SignalId) -> Option<bool> {
        self.lits
            .binary_search_by_key(&signal, |l| l.signal())
            .ok()
            .map(|i| self.lits[i].polarity())
    }

    /// Conjoins another literal; returns `None` on contradiction.
    pub fn and_lit(&self, lit: Lit) -> Option<Self> {
        match self.polarity_of(lit.signal()) {
            Some(p) if p == lit.polarity() => Some(self.clone()),
            Some(_) => None,
            None => {
                let mut lits = self.lits.clone();
                let pos = lits
                    .binary_search_by_key(&lit.signal(), |l| l.signal())
                    .unwrap_err();
                lits.insert(pos, lit);
                Some(Cube { lits })
            }
        }
    }

    /// Conjoins two cubes; returns `None` on contradiction.
    pub fn and(&self, other: &Cube) -> Option<Self> {
        let mut out = self.clone();
        for &l in other.lits() {
            out = out.and_lit(l)?;
        }
        Some(out)
    }

    /// Removes the literal on `signal` if present.
    pub fn without(&self, signal: SignalId) -> Self {
        Cube {
            lits: self
                .lits
                .iter()
                .copied()
                .filter(|l| l.signal() != signal)
                .collect(),
        }
    }

    /// Evaluates the cube under `v`.
    pub fn eval(&self, v: &Valuation) -> bool {
        self.lits.iter().all(|l| l.eval(v))
    }

    /// Whether every assignment satisfying `self` satisfies `other`
    /// (syntactic subsumption: `other ⊆ self` as literal sets).
    pub fn implies(&self, other: &Cube) -> bool {
        other
            .lits
            .iter()
            .all(|l| self.polarity_of(l.signal()) == Some(l.polarity()))
    }

    /// Renders the cube as `a & !b & c` (or `true` when empty).
    pub fn display<'a>(&'a self, table: &'a SignalTable) -> DisplayCube<'a> {
        DisplayCube { cube: self, table }
    }

    /// Enumerates the packed keys over `vars` (bit `i` ⇔ `vars[i]`) whose
    /// valuations satisfy this cube. Cube literals on signals outside
    /// `vars` are ignored. The result has `2^f` keys where `f` is the
    /// number of `vars` the cube leaves free.
    ///
    /// # Panics
    ///
    /// Panics if `vars` has more than 63 signals (packed keys are `u64`).
    pub fn matching_keys(&self, vars: &[SignalId]) -> Vec<u64> {
        assert!(vars.len() < 64, "packed keys are u64");
        let mut fixed_mask = 0u64;
        let mut fixed_bits = 0u64;
        let mut free: Vec<u64> = Vec::new();
        for (bit, &s) in vars.iter().enumerate() {
            match self.polarity_of(s) {
                Some(pol) => {
                    fixed_mask |= 1 << bit;
                    if pol {
                        fixed_bits |= 1 << bit;
                    }
                }
                None => free.push(1 << bit),
            }
        }
        let mut out = Vec::with_capacity(1 << free.len());
        for combo in 0u64..(1 << free.len()) {
            let mut key = fixed_bits;
            for (i, &bit) in free.iter().enumerate() {
                if combo >> i & 1 == 1 {
                    key |= bit;
                }
            }
            out.push(key);
        }
        debug_assert!(out.iter().all(|k| k & fixed_mask == fixed_bits));
        out
    }
}

impl FromIterator<Lit> for Option<Cube> {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Cube::from_lits(iter)
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "true");
        }
        let mut first = true;
        for l in &self.lits {
            if !first {
                write!(f, " & ")?;
            }
            first = false;
            write!(f, "{l:?}")?;
        }
        Ok(())
    }
}

/// Displays a [`Cube`] with signal names; created by [`Cube::display`].
pub struct DisplayCube<'a> {
    cube: &'a Cube,
    table: &'a SignalTable,
}

impl fmt::Display for DisplayCube<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cube.is_empty() {
            return write!(f, "true");
        }
        let mut first = true;
        for l in self.cube.lits() {
            if !first {
                write!(f, " & ")?;
            }
            first = false;
            write!(f, "{}", l.display(self.table))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigs() -> (SignalTable, SignalId, SignalId, SignalId) {
        let mut t = SignalTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let c = t.intern("c");
        (t, a, b, c)
    }

    #[test]
    fn contradiction_rejected() {
        let (_t, a, ..) = sigs();
        assert!(Cube::from_lits([Lit::pos(a), Lit::neg(a)]).is_none());
    }

    #[test]
    fn dedup_and_sort() {
        let (_t, a, b, _c) = sigs();
        let c1 = Cube::from_lits([Lit::pos(b), Lit::pos(a), Lit::pos(b)]).unwrap();
        assert_eq!(c1.len(), 2);
        assert_eq!(c1.lits()[0], Lit::pos(a));
    }

    #[test]
    fn and_lit_behaviour() {
        let (_t, a, b, _c) = sigs();
        let c = Cube::from_lits([Lit::pos(a)]).unwrap();
        assert_eq!(c.and_lit(Lit::pos(a)).unwrap(), c);
        assert!(c.and_lit(Lit::neg(a)).is_none());
        let cb = c.and_lit(Lit::neg(b)).unwrap();
        assert_eq!(cb.polarity_of(b), Some(false));
    }

    #[test]
    fn cube_and_cube() {
        let (_t, a, b, c) = sigs();
        let x = Cube::from_lits([Lit::pos(a), Lit::neg(b)]).unwrap();
        let y = Cube::from_lits([Lit::neg(b), Lit::pos(c)]).unwrap();
        let xy = x.and(&y).unwrap();
        assert_eq!(xy.len(), 3);
        let z = Cube::from_lits([Lit::pos(b)]).unwrap();
        assert!(x.and(&z).is_none());
    }

    #[test]
    fn eval_and_implies() {
        let (t, a, b, _c) = sigs();
        let cube = Cube::from_lits([Lit::pos(a), Lit::neg(b)]).unwrap();
        let mut v = Valuation::all_false(t.len());
        v.set(a, true);
        assert!(cube.eval(&v));
        v.set(b, true);
        assert!(!cube.eval(&v));

        let wider = Cube::from_lits([Lit::pos(a)]).unwrap();
        assert!(cube.implies(&wider));
        assert!(!wider.implies(&cube));
        assert!(cube.implies(&Cube::top()));
    }

    #[test]
    fn without_removes_literal() {
        let (_t, a, b, _c) = sigs();
        let cube = Cube::from_lits([Lit::pos(a), Lit::neg(b)]).unwrap();
        let smaller = cube.without(a);
        assert_eq!(smaller.len(), 1);
        assert_eq!(smaller.polarity_of(b), Some(false));
        assert_eq!(cube.without(a).without(b), Cube::top());
    }

    #[test]
    fn display_names() {
        let (t, a, b, _c) = sigs();
        let cube = Cube::from_lits([Lit::pos(a), Lit::neg(b)]).unwrap();
        assert_eq!(cube.display(&t).to_string(), "a & !b");
        assert_eq!(Cube::top().display(&t).to_string(), "true");
    }

    #[test]
    fn matching_keys_enumerates_cover() {
        let (_t, a, b, c) = sigs();
        let vars = [a, b, c];
        // a & !c over (a,b,c): bit0 = a fixed 1, bit2 = c fixed 0, b free.
        let cube = Cube::from_lits([Lit::pos(a), Lit::neg(c)]).unwrap();
        let mut keys = cube.matching_keys(&vars);
        keys.sort_unstable();
        assert_eq!(keys, vec![0b001, 0b011]);
        // The empty cube matches every key.
        assert_eq!(Cube::top().matching_keys(&vars).len(), 8);
        // Literals outside `vars` are ignored.
        let only_b = Cube::from_lits([Lit::pos(b)]).unwrap();
        assert_eq!(only_b.matching_keys(&[a]).len(), 2);
    }
}
