//! Interned signal names.
//!
//! Every crate in the workspace identifies circuit signals (ports, wires,
//! latch outputs, free environment signals) by a compact [`SignalId`] issued
//! by a [`SignalTable`]. Sharing one table across the architectural spec, the
//! RTL spec and the concrete modules is what makes the paper's Assumption 1
//! (`AP_A ⊆ AP_R`) checkable at all.

use std::collections::HashMap;
use std::fmt;

/// A compact identifier for an interned signal name.
///
/// `SignalId`s are only meaningful relative to the [`SignalTable`] that
/// issued them. They are ordered by creation order, which the BDD engine
/// uses as its default variable order.
///
/// # Example
///
/// ```
/// use dic_logic::SignalTable;
///
/// let mut t = SignalTable::new();
/// let req = t.intern("req");
/// assert_eq!(t.name(req), "req");
/// assert_eq!(t.intern("req"), req); // interning is idempotent
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(u32);

impl SignalId {
    /// Returns the dense index of this signal (0-based creation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `SignalId` from a dense index.
    ///
    /// Intended for container code that stores per-signal data in vectors;
    /// the index must have been obtained from [`SignalId::index`] on the same
    /// table.
    pub fn from_index(index: usize) -> Self {
        SignalId(u32::try_from(index).expect("signal index exceeds u32"))
    }
}

impl fmt::Debug for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An interning table mapping signal names to [`SignalId`]s.
///
/// The table is append-only: signals are never removed, so issued ids stay
/// valid for the lifetime of the table.
#[derive(Clone, Debug, Default)]
pub struct SignalTable {
    names: Vec<String>,
    index: HashMap<String, SignalId>,
}

impl SignalTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> SignalId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = SignalId::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up a name without interning it.
    pub fn lookup(&self, name: &str) -> Option<SignalId> {
        self.index.get(name).copied()
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn name(&self, id: SignalId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned signals.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(id, name)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (SignalId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SignalId::from_index(i), n.as_str()))
    }

    /// Returns all ids in creation order.
    pub fn ids(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.names.len()).map(SignalId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SignalTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SignalTable::new();
        assert!(t.lookup("x").is_none());
        let x = t.intern("x");
        assert_eq!(t.lookup("x"), Some(x));
    }

    #[test]
    fn names_round_trip() {
        let mut t = SignalTable::new();
        for n in ["clk", "rst_n", "data[3]"] {
            let id = t.intern(n);
            assert_eq!(t.name(id), n);
        }
    }

    #[test]
    fn iter_in_creation_order() {
        let mut t = SignalTable::new();
        t.intern("p");
        t.intern("q");
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(collected, vec!["p", "q"]);
    }

    #[test]
    fn ids_are_dense() {
        let mut t = SignalTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(SignalId::from_index(1), b);
    }
}
