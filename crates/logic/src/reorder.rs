//! Constrained group-sifting dynamic variable reordering.
//!
//! BDD sizes are notoriously order-sensitive: a symbolic product that
//! needs tens of millions of nodes under one static order often fits in a
//! few hundred thousand under another. This module implements Rudell-style
//! *sifting* over **groups** of variables: each group (for the symbolic
//! engine, a current/next variable pair, or one automaton-code bit pair)
//! moves through the order as one adjacent block, and groups flagged `top`
//! are only repositioned *within* the topmost block of the order —
//! preserving hard invariants like the symbolic engine's
//! automaton-bits-on-top layout and the order-preserving current/next
//! pairings that renaming depends on.
//!
//! The search runs on an extracted **workspace**: the subgraph reachable
//! from the live roots is copied into a mutable, reference-counted,
//! per-level-unique-table representation where an adjacent level swap is
//! the classic local rewrite (nodes at the upper level are re-expressed
//! over the swapped variable; unreferenced lower nodes die). Workspace
//! children are *edges* exactly like the manager's — node index plus
//! complement bit, stored then-edge regular — so the swap rewrite and the
//! final rebuild preserve complement-bit canonicity end to end. Sifting
//! walks every group through its admissible positions, tracking the exact
//! live node count, and settles each group at its best position (with the
//! usual max-growth early abort). The result is then **rebuilt** into the
//! manager: a fresh node store in the new order, the level maps updated,
//! operation caches dropped, variable sets re-sorted — and a root map
//! handed back so the caller can swap every handle it kept (the map
//! translates node indices; each root keeps its own complement bit).
//! Handles not in the root set are invalidated (the rebuild doubles as
//! the manager's full garbage collection; scratch regions are collected
//! incrementally by [`BddManager::rollback`]).

use crate::bdd::{Bdd, BddManager, Node, TERMINAL_VAR};
use std::collections::HashMap;

/// One sifting group: variables that move through the order as a single
/// adjacent block (their relative order never changes).
#[derive(Clone, Debug)]
pub struct ReorderGroup {
    /// The member variables, top-to-bottom. They must currently occupy
    /// contiguous levels in this order.
    pub vars: Vec<u32>,
    /// Whether the group belongs to the reserved top block: top groups
    /// only sift among the positions of other top groups, so the block's
    /// extent (and everything below it) is preserved exactly.
    pub top: bool,
}

/// Outcome of one [`BddManager::reorder_groups`] call.
#[derive(Clone, Debug)]
pub struct ReorderOutcome {
    /// Node-store size before the reorder (live nodes *plus* garbage not
    /// yet collected by a scratch rollback).
    pub store_before: usize,
    /// Live nodes (reachable from the roots) before sifting.
    pub live_before: usize,
    /// Live nodes after sifting — the store size of the rebuilt manager,
    /// terminal excluded.
    pub live_after: usize,
    /// Whether the sifting search ran (false for a pure compaction —
    /// [`BddManager::compact`], or a [`BddManager::reorder_groups_min_live`]
    /// call whose live size fell below its threshold).
    pub sifted: bool,
    /// Old root handle → new root handle. Every handle passed in `roots`
    /// has an entry; any handle *not* passed is dangling after the call.
    map: HashMap<u32, u32>,
}

impl ReorderOutcome {
    /// Rewrites a kept handle into the rebuilt manager.
    ///
    /// # Panics
    ///
    /// Panics if `h` was not in the root set of the reorder — such a
    /// handle is dangling, and using it would be silent corruption.
    pub fn remap(&self, h: &mut Bdd) {
        *h = self.lookup(*h);
    }

    /// Looks up the new handle for an old root.
    ///
    /// # Panics
    ///
    /// As for [`ReorderOutcome::remap`].
    pub fn lookup(&self, h: Bdd) -> Bdd {
        match self.map.get(&h.raw()) {
            Some(&n) => Bdd::from_raw(n),
            None => panic!("BDD handle {h:?} was not registered as a reorder root"),
        }
    }
}

/// Workspace node. `lo`/`hi` are workspace *edges* (arena index shifted
/// left, complement bit in bit 0; `hi` kept regular). `refs` counts
/// parents plus one per root occurrence; a node dies when it drops to
/// zero.
#[derive(Clone, Copy, Debug)]
struct WsNode {
    var: u32,
    lo: u32,
    hi: u32,
    refs: u32,
}

/// Variable tag of a freed workspace node. Distinct from `TERMINAL_VAR`
/// so that a double `deref` trips the refcount debug assertion instead of
/// being silently skipped as a terminal.
const DEAD: u32 = u32::MAX - 1;

/// Mutable sifting workspace: arena + per-variable unique tables.
struct Workspace {
    nodes: Vec<WsNode>,
    free: Vec<u32>,
    /// Per-variable unique table, canonical `(lo, hi)` edge pair → arena
    /// index. The values of `unique[v]` are exactly the live nodes
    /// labelled `v`.
    unique: Vec<HashMap<(u32, u32), u32>>,
    var_to_level: Vec<u32>,
    level_to_var: Vec<u32>,
    /// Live interior nodes (terminal excluded).
    live: usize,
}

impl Workspace {
    /// Finds or creates the node for `ite(var, hi, lo)` and takes one
    /// reference to it, returning the (possibly complemented) edge in
    /// canonical form. A fresh node also takes references to its children.
    fn mk_ref(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            self.nodes[(lo >> 1) as usize].refs += 1;
            return lo;
        }
        // Canonical form: regular then-edge; a complemented one flips
        // both children and returns a complemented edge.
        let flip = hi & 1;
        let (lo, hi) = (lo ^ flip, hi ^ flip);
        if let Some(&n) = self.unique[var as usize].get(&(lo, hi)) {
            self.nodes[n as usize].refs += 1;
            return (n << 1) | flip;
        }
        self.nodes[(lo >> 1) as usize].refs += 1;
        self.nodes[(hi >> 1) as usize].refs += 1;
        let node = WsNode { var, lo, hi, refs: 1 };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                let i = u32::try_from(self.nodes.len()).expect("workspace overflow");
                self.nodes.push(node);
                i
            }
        };
        self.unique[var as usize].insert((lo, hi), idx);
        self.live += 1;
        (idx << 1) | flip
    }

    /// Releases one reference on the node behind `edge`; cascades into
    /// the children when the node dies.
    fn deref(&mut self, edge: u32) {
        let mut stack = vec![edge >> 1];
        while let Some(n) = stack.pop() {
            let node = &mut self.nodes[n as usize];
            if node.var == TERMINAL_VAR {
                continue; // the terminal is immortal
            }
            debug_assert!(node.refs > 0, "double free in reorder workspace");
            node.refs -= 1;
            if node.refs == 0 {
                let WsNode { var, lo, hi, .. } = *node;
                node.var = DEAD;
                self.unique[var as usize].remove(&(lo, hi));
                self.free.push(n);
                self.live -= 1;
                stack.push(lo >> 1);
                stack.push(hi >> 1);
            }
        }
    }

    /// The classic adjacent-level swap: exchanges the variables at levels
    /// `lvl` and `lvl + 1`, locally rewriting the nodes of the upper
    /// variable. External references stay valid because upper nodes are
    /// rewritten **in place** (same arena index, same function — and the
    /// rewrite provably keeps the stored then-edge regular: the new
    /// then-child is built from then-edges, which are regular by the
    /// invariant).
    fn swap_levels(&mut self, lvl: usize) {
        let x = self.level_to_var[lvl];
        let y = self.level_to_var[lvl + 1];
        let xs: Vec<u32> = self.unique[x as usize].values().copied().collect();
        for n_idx in xs {
            let n = self.nodes[n_idx as usize];
            let (f0, f1) = (n.lo, n.hi);
            let f0_at_y = self.nodes[(f0 >> 1) as usize].var == y;
            let f1_at_y = self.nodes[(f1 >> 1) as usize].var == y;
            if !f0_at_y && !f1_at_y {
                // Independent of y: the node just moves down with x.
                continue;
            }
            // Cofactors push the edge's complement bit into the children;
            // f1 is regular by the invariant, so its cofactors come out
            // as stored (and f11/f01 inherit regularity from then-edges).
            let (f00, f01) = if f0_at_y {
                let c = self.nodes[(f0 >> 1) as usize];
                let p = f0 & 1;
                (c.lo ^ p, c.hi ^ p)
            } else {
                (f0, f0)
            };
            let (f10, f11) = if f1_at_y {
                let c = self.nodes[(f1 >> 1) as usize];
                (c.lo, c.hi)
            } else {
                (f1, f1)
            };
            self.unique[x as usize].remove(&(f0, f1));
            // n = ite(x, f1, f0) = ite(y, ite(x, f11, f01), ite(x, f10, f00)).
            let new_lo = self.mk_ref(x, f00, f10);
            let new_hi = self.mk_ref(x, f01, f11);
            // f11 is always regular (then-edge of a canonical node, or f1
            // itself), so mk_ref neither flips nor — in the f01 == f11
            // collapse — returns a complemented edge. The in-place
            // rewrite below is therefore canonical as stored.
            debug_assert_eq!(new_hi & 1, 0, "swap broke then-edge regularity");
            {
                let node = &mut self.nodes[n_idx as usize];
                node.var = y;
                node.lo = new_lo;
                node.hi = new_hi;
            }
            let prev = self.unique[y as usize].insert((new_lo, new_hi), n_idx);
            debug_assert!(prev.is_none(), "swap produced a duplicate node");
            self.deref(f0);
            self.deref(f1);
        }
        self.level_to_var.swap(lvl, lvl + 1);
        self.var_to_level[x as usize] = (lvl + 1) as u32;
        self.var_to_level[y as usize] = lvl as u32;
    }
}

/// Sifting search state: the groups and their current arrangement.
struct Sifter {
    /// Member variables per group, top-to-bottom within the group.
    groups: Vec<Vec<u32>>,
    /// Group indices in current level order.
    order: Vec<usize>,
    /// Number of groups in the reserved top block (they occupy the first
    /// `top_groups` positions of `order` at all times).
    top_groups: usize,
}

impl Sifter {
    /// Level of the first variable of the group at position `pos`.
    fn base_level(&self, pos: usize) -> usize {
        self.order[..pos].iter().map(|&g| self.groups[g].len()).sum()
    }

    /// Swaps the adjacent groups at positions `pos` and `pos + 1` through
    /// pairwise level swaps, preserving both groups' internal order.
    fn swap_adjacent_groups(&mut self, ws: &mut Workspace, pos: usize) {
        let k = self.groups[self.order[pos]].len();
        let m = self.groups[self.order[pos + 1]].len();
        let base = self.base_level(pos);
        // Bubble each variable of the lower group up over the upper group.
        for j in 0..m {
            for lvl in (base + j..base + k + j).rev() {
                ws.swap_levels(lvl);
            }
        }
        self.order.swap(pos, pos + 1);
    }

    /// Sifts the group currently at position `from` through every position
    /// in `[lo, hi]`, leaves it at the best one and returns the live node
    /// count there. `max_growth` aborts a direction once the count exceeds
    /// the best seen by more than 20%.
    fn sift_group(&mut self, ws: &mut Workspace, from: usize, lo: usize, hi: usize) -> usize {
        let mut best = ws.live;
        let mut best_pos = from;
        let grew = |live: usize, best: usize| live > best + best / 5;
        // Explore downward…
        let mut pos = from;
        while pos < hi {
            self.swap_adjacent_groups(ws, pos);
            pos += 1;
            if ws.live < best {
                best = ws.live;
                best_pos = pos;
            } else if grew(ws.live, best) {
                break;
            }
        }
        // …then all the way up…
        while pos > lo {
            self.swap_adjacent_groups(ws, pos - 1);
            pos -= 1;
            if ws.live < best {
                best = ws.live;
                best_pos = pos;
            } else if pos < from && grew(ws.live, best) {
                break;
            }
        }
        // …and settle at the best position seen.
        while pos < best_pos {
            self.swap_adjacent_groups(ws, pos);
            pos += 1;
        }
        debug_assert_eq!(ws.live, best, "sifting lost track of the best position");
        best
    }
}

impl BddManager {
    /// Reorders the variables by **constrained group sifting**, keeping
    /// exactly the functions reachable from `roots` and returning the
    /// handle map ([`ReorderOutcome`]).
    ///
    /// `groups` must partition the registered variables; each group must
    /// currently occupy contiguous levels (in member order), and the
    /// `top`-flagged groups must currently form the topmost block of the
    /// order. Sifting preserves both properties: groups move as blocks and
    /// top groups never leave the top block.
    ///
    /// Every [`Bdd`] handle not passed in `roots` is invalidated — the
    /// rebuild is also the manager's full garbage collection. Operation
    /// caches are dropped (and the memo generation floor reset, since node
    /// indices change wholesale); registered variable sets are re-sorted
    /// for the new order; pairings survive unchanged (they are
    /// variable-id-keyed, and remain order-preserving because paired
    /// variables always share a group).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is not a partition of the variables into
    /// currently-contiguous blocks with the top block in place.
    pub fn reorder_groups(&mut self, groups: &[ReorderGroup], roots: &[Bdd]) -> ReorderOutcome {
        self.reorder_impl(Some((groups, 0)), roots)
    }

    /// Like [`BddManager::reorder_groups`], but runs the sifting search
    /// only when the extracted live size is at least `min_live` —
    /// otherwise the single extraction still rebuilds (collecting
    /// garbage) in the current order. One pass either way: callers that
    /// gate sifting on live size need not pay a separate compaction to
    /// measure it.
    pub fn reorder_groups_min_live(
        &mut self,
        groups: &[ReorderGroup],
        roots: &[Bdd],
        min_live: usize,
    ) -> ReorderOutcome {
        self.reorder_impl(Some((groups, min_live)), roots)
    }

    /// Rebuilds the manager keeping only the functions reachable from
    /// `roots`, in the *current* order — pure garbage collection, without
    /// the sifting search. Same invalidation contract as
    /// [`BddManager::reorder_groups`]; costs `O(live)` instead of a
    /// sifting pass.
    pub fn compact(&mut self, roots: &[Bdd]) -> ReorderOutcome {
        self.reorder_impl(None, roots)
    }

    fn reorder_impl(
        &mut self,
        groups: Option<(&[ReorderGroup], usize)>,
        roots: &[Bdd],
    ) -> ReorderOutcome {
        let nvars = self.var_to_level.len();
        if let Some((groups, _)) = groups {
            self.validate_groups(groups, nvars);
        }

        // ---- Extract the live subgraph into the workspace. -------------
        let mut ws = Workspace {
            nodes: vec![WsNode { var: TERMINAL_VAR, lo: 0, hi: 0, refs: 1 }],
            free: Vec::new(),
            unique: vec![HashMap::new(); nvars],
            var_to_level: self.var_to_level.clone(),
            level_to_var: self.level_to_var.clone(),
            live: 0,
        };
        // man node index → workspace node index, for the extraction only.
        // Edges translate by mapping the index and carrying the
        // complement bit across: canonical in the manager iff canonical
        // in the workspace.
        let mut into_ws: HashMap<u32, u32> = HashMap::from([(0, 0)]);
        for &root in roots {
            self.extract(root, &mut ws, &mut into_ws);
        }
        // Every root occurrence holds one reference, so live functions
        // survive even when sifting rewrites away all their parents.
        for &root in roots {
            ws.nodes[into_ws[&((root.raw()) >> 1)] as usize].refs += 1;
        }
        let live_before = ws.live;

        // ---- Sift. -----------------------------------------------------
        let sift = matches!(groups, Some((_, min_live)) if live_before >= min_live);
        if let Some((groups, _)) = groups.filter(|_| sift) {
            let top_groups = groups.iter().filter(|g| g.top).count();
            let mut sifter = {
                // Position groups by current level; the validation above
                // guarantees top groups come first.
                let mut order: Vec<usize> = (0..groups.len()).collect();
                order.sort_by_key(|&g| self.var_to_level[groups[g].vars[0] as usize]);
                Sifter {
                    groups: groups.iter().map(|g| g.vars.clone()).collect(),
                    order,
                    top_groups,
                }
            };
            // Sift heaviest groups first (they move the most nodes). Skip
            // featherweight groups outright: a group carrying under 0.1%
            // of the live nodes cannot move the total meaningfully, and
            // walking it across the whole order costs as much as any
            // other — the cutoff keeps a sifting pass proportional to
            // where the nodes actually are.
            let group_nodes = |sifter: &Sifter, ws: &Workspace, g: usize| -> usize {
                sifter.groups[g]
                    .iter()
                    .map(|&v| ws.unique[v as usize].len())
                    .sum()
            };
            let cutoff = (live_before / 1000).max(1);
            let mut by_weight: Vec<(usize, usize)> = (0..groups.len())
                .filter_map(|g| {
                    let w = group_nodes(&sifter, &ws, g);
                    (w >= cutoff).then_some((w, g))
                })
                .collect();
            by_weight.sort_by_key(|&(w, g)| (usize::MAX - w, g));
            for (_, g) in by_weight {
                let pos = sifter
                    .order
                    .iter()
                    .position(|&og| og == g)
                    .expect("group is placed");
                let (lo, hi) = if groups[g].top {
                    (0, sifter.top_groups - 1)
                } else {
                    (sifter.top_groups, sifter.order.len() - 1)
                };
                sifter.sift_group(&mut ws, pos, lo, hi);
            }
        }

        // ---- Rebuild the manager in the new order. ---------------------
        let live_after = ws.live;
        let store_before = self.nodes.len();
        let mut nodes: Vec<Node> = vec![Node { var: TERMINAL_VAR, lo: 0, hi: 0 }];
        nodes.reserve(live_after);
        let mut unique: HashMap<(u32, u32, u32), u32> = HashMap::with_capacity(live_after);
        // workspace node index → new manager node index. Indices are
        // assigned bottom-up, sorting each level by the (already
        // translated) child edges — deterministic regardless of hash-map
        // iteration order. Complement bits ride along on the edges, so
        // canonicity is preserved verbatim.
        let mut out_of_ws: HashMap<u32, u32> = HashMap::from([(0, 0)]);
        for lvl in (0..nvars).rev() {
            let var = ws.level_to_var[lvl];
            let mut level_nodes: Vec<(u32, u32, u32)> = ws.unique[var as usize]
                .values()
                .map(|&idx| {
                    let n = ws.nodes[idx as usize];
                    let lo = (out_of_ws[&(n.lo >> 1)] << 1) | (n.lo & 1);
                    let hi = (out_of_ws[&(n.hi >> 1)] << 1) | (n.hi & 1);
                    (lo, hi, idx)
                })
                .collect();
            level_nodes.sort_unstable();
            for (lo, hi, ws_idx) in level_nodes {
                let new = u32::try_from(nodes.len()).expect("BDD node store overflow");
                debug_assert_eq!(hi & 1, 0, "rebuild broke then-edge regularity");
                nodes.push(Node { var, lo, hi });
                unique.insert((var, lo, hi), new);
                out_of_ws.insert(ws_idx, new);
            }
        }
        let map: HashMap<u32, u32> = roots
            .iter()
            .map(|r| {
                let new_idx = out_of_ws[&into_ws[&(r.raw() >> 1)]];
                (r.raw(), (new_idx << 1) | (r.raw() & 1))
            })
            .collect();

        self.nodes = nodes;
        self.unique = unique;
        // Node indices changed wholesale: memos and the generation floor
        // are both meaningless now.
        self.reset_generations();
        self.var_to_level = ws.var_to_level;
        self.level_to_var = ws.level_to_var;
        // Variable sets are traversal-ordered: re-sort them for the new
        // levels (contents unchanged, so every VarSetId stays valid).
        let levels = std::mem::take(&mut self.var_to_level);
        for set in &mut self.var_sets {
            set.sort_by_key(|&v| levels[v as usize]);
        }
        self.var_to_level = levels;
        // Pairings are variable-id-keyed and survive as long as they stay
        // order-preserving — guaranteed by pairs sharing a group.
        #[cfg(debug_assertions)]
        {
            let pairings = self.pairings.clone();
            for p in &pairings {
                self.assert_pairing_monotone(p);
            }
        }

        ReorderOutcome {
            store_before,
            live_before,
            live_after,
            sifted: sift,
            map,
        }
    }

    /// Copies the subgraph of `root` into the workspace (iterative
    /// post-order, so deep BDDs cannot overflow the call stack). Keyed by
    /// node index — a function and its complement share one workspace
    /// node, exactly as they share one manager node.
    fn extract(&self, root: Bdd, ws: &mut Workspace, into_ws: &mut HashMap<u32, u32>) {
        let mut stack = vec![(root.raw() >> 1, false)];
        while let Some((n, expanded)) = stack.pop() {
            if into_ws.contains_key(&n) {
                continue;
            }
            let node = self.nodes[n as usize];
            if expanded {
                let lo = (into_ws[&(node.lo >> 1)] << 1) | (node.lo & 1);
                let hi = (into_ws[&(node.hi >> 1)] << 1) | (node.hi & 1);
                let edge = ws.mk_ref(node.var, lo, hi);
                debug_assert_eq!(edge & 1, 0, "extracting a canonical node yields a regular edge");
                // mk_ref's caller reference is dropped again: reference
                // counting during extraction comes from parents (and the
                // explicit root references added by the caller).
                let idx = edge >> 1;
                ws.nodes[idx as usize].refs -= 1;
                into_ws.insert(n, idx);
            } else {
                stack.push((n, true));
                stack.push((node.lo >> 1, false));
                stack.push((node.hi >> 1, false));
            }
        }
    }

    fn validate_groups(&self, groups: &[ReorderGroup], nvars: usize) {
        let mut covered = vec![false; nvars];
        let mut top_size = 0usize;
        for g in groups {
            assert!(!g.vars.is_empty(), "empty reorder group");
            for w in g.vars.windows(2) {
                assert_eq!(
                    self.var_to_level[w[1] as usize],
                    self.var_to_level[w[0] as usize] + 1,
                    "group variables {} and {} are not level-adjacent",
                    w[0],
                    w[1]
                );
            }
            for &v in &g.vars {
                let slot = &mut covered[v as usize];
                assert!(!*slot, "variable {v} appears in two reorder groups");
                *slot = true;
            }
            if g.top {
                top_size += g.vars.len();
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "reorder groups must cover every registered variable"
        );
        for g in groups.iter().filter(|g| g.top) {
            for &v in &g.vars {
                assert!(
                    (self.var_to_level[v as usize] as usize) < top_size,
                    "top-block variable {v} is below the top block"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::SignalTable;
    use crate::valuation::Valuation;

    /// One group per variable, no top block — plain sifting.
    fn singleton_groups(n: u32) -> Vec<ReorderGroup> {
        (0..n)
            .map(|v| ReorderGroup { vars: vec![v], top: false })
            .collect()
    }

    #[test]
    fn reorder_preserves_semantics() {
        // A function with a strongly order-sensitive size: the "two-bank"
        // conjunction x0·y0 ∨ x1·y1 ∨ x2·y2, registered banks-apart (all
        // x first) — the worst order. Sifting must interleave the pairs
        // and shrink the BDD, without changing the function.
        let mut t = SignalTable::new();
        let xs: Vec<_> = (0..3).map(|i| t.intern(&format!("x{i}"))).collect();
        let ys: Vec<_> = (0..3).map(|i| t.intern(&format!("y{i}"))).collect();
        let mut m = BddManager::new();
        let xv: Vec<_> = xs.iter().map(|&s| m.var_for_signal(s)).collect();
        let yv: Vec<_> = ys.iter().map(|&s| m.var_for_signal(s)).collect();
        let mut f = Bdd::FALSE;
        for i in 0..3 {
            let pair = m.and(xv[i], yv[i]);
            f = m.or(f, pair);
        }
        let size_before = m.size(f);
        let mut truth = Vec::new();
        let all: Vec<_> = xs.iter().chain(&ys).copied().collect();
        for bits in 0..64u64 {
            let mut v = Valuation::all_false(t.len());
            v.assign_key(&all, bits);
            truth.push(m.eval(f, &v));
        }

        let outcome = m.reorder_groups(&singleton_groups(6), &[f]);
        let mut f2 = f;
        outcome.remap(&mut f2);
        assert_eq!(outcome.live_before, size_before);
        assert!(
            outcome.live_after < size_before,
            "sifting should shrink the banked conjunction ({} -> {})",
            size_before,
            outcome.live_after
        );
        for (bits, &expect) in truth.iter().enumerate() {
            let mut v = Valuation::all_false(t.len());
            v.assign_key(&all, bits as u64);
            assert_eq!(m.eval(f2, &v), expect, "bits {bits:06b}");
        }
        // The rebuilt manager is canonical: rebuilding the function from
        // scratch reuses the same handle.
        let xv2: Vec<_> = xs.iter().map(|&s| m.var_for_signal(s)).collect();
        let yv2: Vec<_> = ys.iter().map(|&s| m.var_for_signal(s)).collect();
        let mut g = Bdd::FALSE;
        for i in 0..3 {
            let pair = m.and(xv2[i], yv2[i]);
            g = m.or(g, pair);
        }
        assert_eq!(g, f2);
    }

    #[test]
    fn complemented_roots_survive_a_reorder() {
        // A root and its complement share nodes; both must remap, and the
        // remapped handles must still be each other's complement.
        let mut t = SignalTable::new();
        let xs: Vec<_> = (0..4).map(|i| t.intern(&format!("x{i}"))).collect();
        let mut m = BddManager::new();
        let vs: Vec<_> = xs.iter().map(|&s| m.var_for_signal(s)).collect();
        let a = m.and(vs[0], vs[2]);
        let b = m.and(vs[1], vs[3]);
        let f = m.or(a, b);
        let nf = m.not(f);
        let outcome = m.reorder_groups(&singleton_groups(4), &[f, nf]);
        let (f2, nf2) = (outcome.lookup(f), outcome.lookup(nf));
        assert_eq!(nf2, f2.complement());
        for bits in 0..16u64 {
            let mut v = Valuation::all_false(t.len());
            v.assign_key(&xs, bits);
            let expect = (bits & 1) & (bits >> 2 & 1) | (bits >> 1 & 1) & (bits >> 3 & 1);
            assert_eq!(m.eval(f2, &v), expect == 1, "bits {bits:04b}");
            assert_eq!(m.eval(nf2, &v), expect == 0, "bits {bits:04b}");
        }
    }

    #[test]
    fn groups_move_as_blocks_and_top_block_is_preserved() {
        // Six variables in three pairs; the first pair is a top block.
        let mut t = SignalTable::new();
        let sigs: Vec<_> = (0..6).map(|i| t.intern(&format!("s{i}"))).collect();
        let mut m = BddManager::new();
        let vs: Vec<_> = sigs.iter().map(|&s| m.var_for_signal(s)).collect();
        // Couple pair 1 (vars 2,3) to pair 2 (vars 4,5) so sifting wants
        // to move them together; mention the top pair too.
        let a = m.and(vs[2], vs[4]);
        let b = m.and(vs[3], vs[5]);
        let ab = m.or(a, b);
        let top = m.and(vs[0], vs[1]);
        let f = m.xor(ab, top);
        let groups = vec![
            ReorderGroup { vars: vec![0, 1], top: true },
            ReorderGroup { vars: vec![2, 3], top: false },
            ReorderGroup { vars: vec![4, 5], top: false },
        ];
        let outcome = m.reorder_groups(&groups, &[f]);
        let mut f2 = f;
        outcome.remap(&mut f2);
        // Top block: vars 0 and 1 still occupy levels 0 and 1, in order.
        assert_eq!(m.level_of(0), 0);
        assert_eq!(m.level_of(1), 1);
        // Pair members stay adjacent, in order, below the top block.
        for pair in [[2u32, 3], [4, 5]] {
            assert_eq!(
                m.level_of(pair[1]),
                m.level_of(pair[0]) + 1,
                "pair {pair:?} must stay adjacent"
            );
            assert!(m.level_of(pair[0]) >= 2, "pair {pair:?} must stay below the top block");
        }
        // Semantics preserved.
        for bits in 0..64u64 {
            let mut v = Valuation::all_false(t.len());
            v.assign_key(&sigs, bits);
            let expect = ((bits >> 2 & 1) & (bits >> 4 & 1) | (bits >> 3 & 1) & (bits >> 5 & 1))
                ^ ((bits & 1) & (bits >> 1 & 1));
            assert_eq!(m.eval(f2, &v), expect == 1, "bits {bits:06b}");
        }
    }

    #[test]
    fn unregistered_roots_are_collected_and_dangling_lookup_panics() {
        let mut t = SignalTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let mut m = BddManager::new();
        let va = m.var_for_signal(a);
        let vb = m.var_for_signal(b);
        let keep = m.and(va, vb);
        let drop = m.or(va, vb);
        let nodes_with_garbage = m.node_count();
        let outcome = m.reorder_groups(&singleton_groups(2), &[keep]);
        assert!(outcome.store_before == nodes_with_garbage);
        assert!(m.node_count() < nodes_with_garbage, "garbage must be collected");
        let r = std::panic::catch_unwind(|| outcome.lookup(drop));
        assert!(r.is_err(), "unregistered handles must not remap silently");
    }

    #[test]
    fn quantification_and_rename_survive_a_reorder() {
        // Interleaved curr/next pairs (a,b) and (c,d); pairing a→b, c→d.
        let mut t = SignalTable::new();
        let ids: Vec<_> = ["a", "b", "c", "d"].iter().map(|n| t.intern(n)).collect();
        let mut m = BddManager::new();
        let vs: Vec<_> = ids.iter().map(|&s| m.var_for_signal(s)).collect();
        let (va, vb, vc, vd) = (0u32, 1u32, 2u32, 3u32);
        let c2n = m.register_pairing(&[(va, vb), (vc, vd)]);
        let set = m.register_var_set(&[va, vc]);
        let nc = m.not(vs[2]);
        let f = m.and(vs[0], nc);
        let g = m.or(vs[0], vs[2]);
        let expect_ae = {
            let conj = m.and(f, g);
            m.exists_all(conj, &[ids[0], ids[2]])
        };
        let before_ae = m.and_exists(f, g, set);
        assert_eq!(before_ae, expect_ae);
        let before_rn = m.rename(f, c2n);

        let groups = vec![
            ReorderGroup { vars: vec![0, 1], top: false },
            ReorderGroup { vars: vec![2, 3], top: false },
        ];
        let mut roots = [f, g, before_ae, before_rn];
        let outcome = m.reorder_groups(&groups, &roots.clone());
        for r in &mut roots {
            outcome.remap(r);
        }
        let [f, g, ae, rn] = roots;
        // The registered set and pairing still work on the new order.
        assert_eq!(m.and_exists(f, g, set), ae);
        assert_eq!(m.rename(f, c2n), rn);
    }
}
