//! A reduced ordered binary decision diagram (ROBDD) engine with
//! complement edges.
//!
//! The engine is deliberately small but complete enough for the workloads in
//! this workspace: canonical Boolean function representation, the full set
//! of binary connectives via `ite`, existential/universal quantification,
//! restriction, functional composition, satisfying-assignment extraction,
//! model counting and Minato–Morreale irredundant sum-of-products covers
//! (used to present gap terms as readable cubes).
//!
//! # Complement edges
//!
//! A [`Bdd`] handle is an *edge*: a node index in the high bits plus a
//! **complement bit** in bit 0. The edge `(n, 1)` denotes the negation of
//! the function at node `n`, so negation is a single XOR — no traversal, no
//! allocation — and a function and its complement share every node. There
//! is a single terminal node (index 0, the constant **true**); `FALSE` is
//! its complemented edge. Canonicity is kept by the classic invariant:
//! **stored then-edges are always regular** (complement bit clear). `mk`
//! re-establishes the invariant by flipping both children and returning a
//! complemented edge whenever the then-child comes in complemented, so two
//! handles are equal iff they denote the same function — including across
//! negation.
//!
//! # Generational caches
//!
//! The node store is append-only between [`BddManager::checkpoint`] /
//! [`BddManager::rollback`] pairs. The operation memos are split into an
//! **old** and a **young** generation around the checkpoint's node count
//! (the *generation floor*): entries that only reference pre-checkpoint
//! nodes go old, everything else young. Rolling back to the floor then
//! frees exactly the scratch nodes (walking only the truncated suffix of
//! the store) and drops only the young memo generation — O(freed) instead
//! of the full retain-scans the first version of this manager paid on
//! every scratch region.
//!
//! Variables are registered per [`SignalId`] on first use; the variable
//! *order* starts as the registration order but is decoupled from variable
//! identity through a level map, so [`BddManager::reorder_groups`] can
//! change it without re-keying anything a client holds. All operations are
//! memoized in the manager, so [`Bdd`] handles are plain indices that are
//! cheap to copy and compare — two handles are equal iff they denote the
//! same function.

use crate::cube::{Cube, Lit};
use crate::expr::BoolExpr;
use crate::signal::SignalId;
use crate::valuation::Valuation;
use std::collections::HashMap;

/// A handle to a BDD edge (node index plus complement bit) inside a
/// [`BddManager`].
///
/// Handles are canonical: `a == b` iff they represent the same Boolean
/// function *within the same manager*. Mixing handles across managers is a
/// logic error (not memory-unsafe, but meaningless).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant true function: the regular edge to the terminal.
    pub const TRUE: Bdd = Bdd(0);
    /// The constant false function: the complemented edge to the terminal.
    pub const FALSE: Bdd = Bdd(1);

    /// Whether this handle is the constant false.
    pub fn is_false(self) -> bool {
        self == Bdd::FALSE
    }

    /// Whether this handle is the constant true.
    pub fn is_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// The complemented edge: `¬f` in O(1), no manager access. The
    /// manager's [`BddManager::not`] is this operation.
    pub fn complement(self) -> Bdd {
        Bdd(self.0 ^ 1)
    }

    /// Whether the edge carries the complement bit.
    fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The underlying node index (complement bit stripped).
    pub(crate) fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    pub(crate) fn from_raw(n: u32) -> Bdd {
        Bdd(n)
    }
}

pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// Level of the terminal pseudo-variable: below every real level.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// Largest storable node index: one bit of the handle is the complement
/// tag.
const MAX_NODE_INDEX: usize = (u32::MAX >> 1) as usize;

/// An interior node. `lo` and `hi` are *edges* (complement bit included);
/// the canonical-form invariant keeps `hi` regular.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Node {
    pub(crate) var: u32,
    pub(crate) lo: u32,
    pub(crate) hi: u32,
}

/// One operation memo split into old/young generations around the
/// manager's generation floor (see the module docs). Values carry the
/// result edge plus the highest node index the entry references, so
/// validity under any truncation is a single comparison.
#[derive(Debug, Default)]
struct GenCache<K> {
    old: HashMap<K, (u32, u32)>,
    young: HashMap<K, (u32, u32)>,
}

impl<K: Eq + std::hash::Hash> GenCache<K> {
    fn get(&self, key: &K) -> Option<u32> {
        self.young
            .get(key)
            .or_else(|| self.old.get(key))
            .map(|&(r, _)| r)
    }

    /// Inserts an entry, placed by its youngest referenced node index
    /// relative to the generation floor.
    fn insert(&mut self, floor: Option<u32>, key: K, result: u32, yref: u32) {
        match floor {
            Some(fl) if yref >= fl => self.young.insert(key, (result, yref)),
            _ => self.old.insert(key, (result, yref)),
        };
    }

    fn len(&self) -> usize {
        self.old.len() + self.young.len()
    }

    fn clear(&mut self) {
        self.old.clear();
        self.young.clear();
    }

    /// Merges the young generation into the old one (used when the floor
    /// rises: everything currently live becomes old).
    fn promote(&mut self) {
        if !self.young.is_empty() {
            self.old.extend(self.young.drain());
        }
    }

    /// Drops entries referencing nodes at or above `limit`. With
    /// `floor_held` the old generation is known valid (every entry is
    /// below the floor ≤ `limit`) and only the young side is touched.
    fn collect(&mut self, limit: u32, floor_held: bool) {
        if floor_held {
            self.young.retain(|_, &mut (_, yref)| yref < limit);
        } else {
            self.old.retain(|_, &mut (_, yref)| yref < limit);
            self.young.retain(|_, &mut (_, yref)| yref < limit);
        }
    }
}

/// The BDD manager: node store, unique table and operation caches.
///
/// # Example
///
/// ```
/// use dic_logic::{BddManager, SignalTable};
///
/// let mut t = SignalTable::new();
/// let (a, b) = (t.intern("a"), t.intern("b"));
/// let mut man = BddManager::new();
/// let (va, vb) = (man.var_for_signal(a), man.var_for_signal(b));
/// let f = man.and(va, vb);
/// let g = man.not(f);
/// let na = man.not(va);
/// let nb = man.not(vb);
/// let h = man.or(na, nb); // De Morgan
/// assert_eq!(g, h);
/// ```
#[derive(Debug, Default)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    /// Unique table: `(var, lo, hi)` in canonical form → node index.
    pub(crate) unique: HashMap<(u32, u32, u32), u32>,
    ite_cache: GenCache<(u32, u32, u32)>,
    var_to_signal: Vec<SignalId>,
    signal_to_var: HashMap<SignalId, u32>,
    /// Variable id → level in the current order (level 0 is the top).
    /// Identity at registration time; permuted by reordering.
    pub(crate) var_to_level: Vec<u32>,
    /// Level → variable id (the inverse of `var_to_level`).
    pub(crate) level_to_var: Vec<u32>,
    /// Interned variable sets for [`BddManager::and_exists`], each sorted
    /// by current level (re-sorted after every reorder).
    pub(crate) var_sets: Vec<Vec<u32>>,
    /// Interned variable pairings for [`BddManager::rename`], sorted by
    /// source variable id (level-independent).
    pub(crate) pairings: Vec<Vec<(u32, u32)>>,
    /// Memo for `and_exists`, keyed by `(set, f, g)` with `f <= g`.
    and_exists_cache: GenCache<(u32, u32, u32)>,
    /// Memo for `rename`, keyed by `(pairing, f)` with `f` regular
    /// (renaming commutes with complement).
    rename_cache: GenCache<(u32, u32)>,
    /// Node count at the oldest outstanding checkpoint: entries wholly
    /// below it live in the old memo generation. `None` = no checkpoint
    /// taken since the last rebuild.
    gen_floor: Option<u32>,
    /// High-water mark of the node store, *including* scratch regions that
    /// were later rolled back (the trace gauge only sees peaks while
    /// tracing is on; this one is always exact).
    peak_nodes: usize,
    /// Rollbacks that actually freed nodes.
    gc_collections: usize,
    /// Total nodes freed by those rollbacks.
    gc_freed: usize,
}

/// A node-store marker created by [`BddManager::checkpoint`] and consumed
/// by [`BddManager::rollback`].
#[derive(Clone, Copy, Debug)]
pub struct BddCheckpoint {
    nodes: usize,
}

impl BddCheckpoint {
    /// Node count at the time of the checkpoint.
    pub fn nodes(&self) -> usize {
        self.nodes
    }
}

/// A handle to a registered quantification variable set
/// (see [`BddManager::register_var_set`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarSetId(u32);

/// A handle to a registered variable pairing
/// (see [`BddManager::register_pairing`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PairingId(u32);

impl BddManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        let mut m = BddManager {
            nodes: Vec::with_capacity(1024),
            ..BddManager::default()
        };
        // Index 0: the single terminal (constant true as a regular edge).
        m.nodes.push(Node { var: TERMINAL_VAR, lo: 0, hi: 0 });
        m.peak_nodes = 1;
        m
    }

    /// Registers (or finds) the BDD variable for `signal` and returns the
    /// single-variable function.
    pub fn var_for_signal(&mut self, signal: SignalId) -> Bdd {
        let var = self.var_index(signal);
        self.mk(var, Bdd::FALSE, Bdd::TRUE)
    }

    /// Returns the variable index for `signal`, registering it if new.
    pub fn var_index(&mut self, signal: SignalId) -> u32 {
        if let Some(&v) = self.signal_to_var.get(&signal) {
            return v;
        }
        let v = u32::try_from(self.var_to_signal.len()).expect("too many BDD variables");
        self.var_to_signal.push(signal);
        self.signal_to_var.insert(signal, v);
        // New variables enter at the bottom of the current order.
        self.var_to_level.push(v);
        self.level_to_var.push(v);
        debug_assert_eq!(self.var_to_level.len(), self.var_to_signal.len());
        v
    }

    /// The level (position in the current variable order, 0 = top) of a
    /// registered variable. Levels change under
    /// [`BddManager::reorder_groups`]; variable ids never do.
    pub fn level_of(&self, var: u32) -> u32 {
        if var == TERMINAL_VAR {
            TERMINAL_LEVEL
        } else {
            self.var_to_level[var as usize]
        }
    }

    /// The current variable order, top level first.
    pub fn var_order(&self) -> &[u32] {
        &self.level_to_var
    }

    /// The signal behind a variable index.
    ///
    /// # Panics
    ///
    /// Panics if `var` has not been registered.
    pub fn signal_of_var(&self, var: u32) -> SignalId {
        self.var_to_signal[var as usize]
    }

    /// Number of live nodes (including the terminal).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// High-water mark of the node store over the manager's lifetime,
    /// including scratch regions that were rolled back since. This is the
    /// honest peak for memory accounting — [`BddManager::node_count`]
    /// after a rollback understates what was actually allocated.
    pub fn peak_node_count(&self) -> usize {
        self.peak_nodes
    }

    /// Number of rollbacks that freed at least one node.
    pub fn gc_collections(&self) -> usize {
        self.gc_collections
    }

    /// Total nodes freed by scratch-region rollbacks (reorder/compaction
    /// rebuilds are counted separately by their [`crate::ReorderOutcome`]).
    pub fn gc_freed_nodes(&self) -> usize {
        self.gc_freed
    }

    /// Total number of entries across the operation memo tables (`ite`,
    /// `and_exists`, `rename`), both generations.
    ///
    /// Together with [`BddManager::node_count`] this is the memory-growth
    /// accounting the symbolic engine's fail-closed limit is built on: the
    /// node store and the memo tables are the only unbounded allocations in
    /// the manager.
    pub fn cache_entries(&self) -> usize {
        self.ite_cache.len() + self.and_exists_cache.len() + self.rename_cache.len()
    }

    /// Drops every operation memo table (the unique table and node store are
    /// kept, so all existing [`Bdd`] handles stay valid and canonical).
    ///
    /// Subsequent operations recompute from scratch; callers under memory
    /// pressure trade time for space.
    pub fn clear_op_caches(&mut self) {
        self.ite_cache.clear();
        self.and_exists_cache.clear();
        self.rename_cache.clear();
    }

    /// Resets the generational split after a rebuild replaced the node
    /// store (reorder/compact): all memos are gone, no floor is set.
    pub(crate) fn reset_generations(&mut self) {
        self.clear_op_caches();
        self.gen_floor = None;
    }

    /// A point-in-time marker of the node store for
    /// [`BddManager::rollback`].
    ///
    /// Taking a checkpoint also raises the memo **generation floor** to the
    /// current node count: every existing memo entry is promoted to the old
    /// generation (it can only reference surviving nodes), and entries
    /// created after this point that touch post-checkpoint nodes go young —
    /// which is what makes the matching rollback O(freed).
    pub fn checkpoint(&mut self) -> BddCheckpoint {
        let n = self.nodes.len();
        let floor = u32::try_from(n).expect("checkpoint within u32 store");
        if self.gen_floor != Some(floor) {
            self.ite_cache.promote();
            self.and_exists_cache.promote();
            self.rename_cache.promote();
            self.gen_floor = Some(floor);
        }
        BddCheckpoint { nodes: n }
    }

    /// Frees every node created after `cp` — the node store is
    /// append-only between checkpoints, so this truncates the store,
    /// removes exactly the freed nodes' unique-table entries (walking only
    /// the truncated suffix), and drops the young memo generation. Old
    /// memo entries are wholly over surviving nodes and are kept warm —
    /// when `cp` is the checkpoint that set the current generation floor,
    /// nothing is scanned at all and the whole rollback is O(freed).
    ///
    /// The manager never garbage-collects on its own; throwaway
    /// computations whose results are extracted to non-BDD form (witness
    /// runs, verdicts) use checkpoint/rollback to run in bounded memory.
    /// Every [`Bdd`] handle obtained *after* the checkpoint is
    /// invalidated; handles from before stay valid and canonical.
    /// Variable registrations, variable sets and pairings survive (they
    /// reference no nodes).
    pub fn rollback(&mut self, cp: &BddCheckpoint) {
        if self.nodes.len() == cp.nodes {
            return; // nothing was created — all tables are already clean
        }
        let limit = u32::try_from(cp.nodes).expect("checkpoint within u32 store");
        // O(freed) unique-table cleanup: each truncated node owns exactly
        // one unique entry, keyed by its stored (canonical) triple.
        for idx in cp.nodes..self.nodes.len() {
            let n = self.nodes[idx];
            self.unique.remove(&(n.var, n.lo, n.hi));
        }
        let freed = self.nodes.len() - cp.nodes;
        self.nodes.truncate(cp.nodes);
        match self.gen_floor {
            Some(floor) if limit >= floor => {
                // Fast path: the old generation references only nodes
                // below the floor, all of which survive.
                if limit == floor {
                    self.ite_cache.young.clear();
                    self.and_exists_cache.young.clear();
                    self.rename_cache.young.clear();
                } else {
                    self.ite_cache.collect(limit, true);
                    self.and_exists_cache.collect(limit, true);
                    self.rename_cache.collect(limit, true);
                }
            }
            _ => {
                // Rolling back below the floor (nested checkpoints) or
                // with no floor at all: full scan, then lower the floor.
                self.ite_cache.collect(limit, false);
                self.and_exists_cache.collect(limit, false);
                self.rename_cache.collect(limit, false);
                if self.gen_floor.is_some() {
                    self.gen_floor = Some(limit);
                }
            }
        }
        self.gc_collections += 1;
        self.gc_freed += freed;
        if dic_trace::enabled() {
            dic_trace::count(dic_trace::Counter::BddGcCollections, 1);
            dic_trace::gauge_set(dic_trace::Gauge::BddLiveNodes, self.nodes.len() as u64);
        }
    }

    /// Registers a set of variables for [`BddManager::and_exists`],
    /// returning its handle. Registering the same set again returns the
    /// existing handle.
    pub fn register_var_set(&mut self, vars: &[u32]) -> VarSetId {
        // Sets are kept sorted by *current level* (the traversal order
        // `and_exists` needs); equal sets sort identically under any one
        // order, so interning still dedups. Reordering re-sorts every set.
        let mut sorted: Vec<u32> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.sort_by_key(|&v| self.var_to_level[v as usize]);
        if let Some(i) = self.var_sets.iter().position(|s| *s == sorted) {
            return VarSetId(i as u32);
        }
        self.var_sets.push(sorted);
        VarSetId((self.var_sets.len() - 1) as u32)
    }

    /// Combined and-exists (the *relational product*): `∃ S. f ∧ g` in one
    /// recursive pass, without ever materializing the conjunction `f ∧ g`.
    ///
    /// This is the primitive behind symbolic image/preimage computation: the
    /// intermediate `T ∧ S` of a naive implementation is routinely orders of
    /// magnitude larger than either operand or the result, and this operator
    /// quantifies variables out as soon as the recursion passes their level.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, set: VarSetId) -> Bdd {
        let vars = std::mem::take(&mut self.var_sets[set.0 as usize]);
        let r = self.and_exists_rec(f, g, &vars, 0, set.0);
        self.var_sets[set.0 as usize] = vars;
        r
    }

    fn and_exists_rec(&mut self, f: Bdd, g: Bdd, vars: &[u32], from: usize, set: u32) -> Bdd {
        if f.is_false() || g.is_false() || f == g.complement() {
            return Bdd::FALSE;
        }
        // f ∧ f = f: degrade the duplicate operand to plain
        // quantification (free with complement edges, where ¬f-vs-f is
        // the equality check above).
        let g = if f == g { Bdd::TRUE } else { g };
        if f.is_true() && g.is_true() {
            return Bdd::TRUE;
        }
        // Normalize for the commutative cache.
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        let key = (set, f.0, g.0);
        if dic_trace::enabled() {
            dic_trace::count(dic_trace::Counter::BddAndExistsOps, 1);
            dic_trace::count(dic_trace::Counter::BddMemoLookups, 1);
        }
        if let Some(r) = self.and_exists_cache.get(&key) {
            if dic_trace::enabled() {
                dic_trace::count(dic_trace::Counter::BddMemoHits, 1);
            }
            return Bdd(r);
        }
        let (fv, gv) = (self.top_var(f), self.top_var(g));
        let v = if self.level_of(fv) <= self.level_of(gv) { fv } else { gv };
        let v_level = self.level_of(v);
        // Quantified variables above the current level cannot occur below
        // (`vars` is sorted by level).
        let mut from = from;
        while from < vars.len() && self.level_of(vars[from]) < v_level {
            from += 1;
        }
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let quantify = from < vars.len() && vars[from] == v;
        let lo = self.and_exists_rec(f0, g0, vars, from, set);
        let r = if quantify && lo.is_true() {
            // Short-circuit: lo ∨ hi is true regardless of hi.
            Bdd::TRUE
        } else {
            let hi = self.and_exists_rec(f1, g1, vars, from, set);
            if quantify {
                self.or(lo, hi)
            } else {
                self.mk(v, lo, hi)
            }
        };
        let yref = f.0.max(g.0).max(r.0) >> 1;
        self.and_exists_cache.insert(self.gen_floor, key, r.0, yref);
        r
    }

    /// Registers a variable pairing for [`BddManager::rename`], returning
    /// its handle. Registering the same pairing again returns the existing
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics unless the pairing is *order-preserving* under the current
    /// variable order: sorting sources by level must also sort the targets
    /// by level, and no target may collide with a source of a different
    /// pair. (Current/next state variables allocated interleaved satisfy
    /// this by construction; reordering preserves it as long as each
    /// current/next pair moves as one block — exactly the group constraint
    /// of [`BddManager::reorder_groups`]. The restriction is what keeps
    /// renaming a single linear rebuild instead of a general compose.)
    pub fn register_pairing(&mut self, pairs: &[(u32, u32)]) -> PairingId {
        let mut sorted: Vec<(u32, u32)> = pairs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for w in sorted.windows(2) {
            assert!(
                w[0].0 != w[1].0,
                "pairing maps variable {} twice",
                w[0].0
            );
        }
        self.assert_pairing_monotone(&sorted);
        for &(from, to) in &sorted {
            assert!(
                from == to || sorted.binary_search_by_key(&to, |&(f, _)| f).is_err(),
                "pairing target {to} is also a source"
            );
        }
        if let Some(i) = self.pairings.iter().position(|p| *p == sorted) {
            return PairingId(i as u32);
        }
        self.pairings.push(sorted);
        PairingId((self.pairings.len() - 1) as u32)
    }

    /// Checks that a pairing is order-preserving under the *current* levels:
    /// walking the pairs by source level, the target levels must increase.
    /// Called at registration and re-checked (debug) after every reorder.
    pub(crate) fn assert_pairing_monotone(&self, pairs: &[(u32, u32)]) {
        let mut by_level: Vec<(u32, u32)> = pairs.to_vec();
        by_level.sort_by_key(|&(from, _)| self.level_of(from));
        for w in by_level.windows(2) {
            assert!(
                self.level_of(w[0].1) < self.level_of(w[1].1),
                "pairing is not order-preserving: {} -> {} but {} -> {}",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }

    /// Renames variables of `f` according to a registered pairing
    /// (simultaneous substitution `f[x := x']` for every `(x, x')` pair).
    ///
    /// Used to swap between current-state and next-state variable banks in
    /// symbolic image computation.
    pub fn rename(&mut self, f: Bdd, pairing: PairingId) -> Bdd {
        let pairs = std::mem::take(&mut self.pairings[pairing.0 as usize]);
        let r = self.rename_rec(f, &pairs, pairing.0);
        self.pairings[pairing.0 as usize] = pairs;
        r
    }

    fn rename_rec(&mut self, f: Bdd, pairs: &[(u32, u32)], pairing: u32) -> Bdd {
        if f.is_true() || f.is_false() {
            return f;
        }
        // Renaming commutes with complement: recurse on the regular edge
        // and re-apply the bit, so f and ¬f share one memo entry.
        let c = f.0 & 1;
        let fr = Bdd(f.0 & !1);
        let key = (pairing, fr.0);
        if dic_trace::enabled() {
            dic_trace::count(dic_trace::Counter::BddRenameOps, 1);
            dic_trace::count(dic_trace::Counter::BddMemoLookups, 1);
        }
        if let Some(r) = self.rename_cache.get(&key) {
            if dic_trace::enabled() {
                dic_trace::count(dic_trace::Counter::BddMemoHits, 1);
            }
            return Bdd(r ^ c);
        }
        let n = self.node(fr);
        let lo = self.rename_rec(Bdd(n.lo), pairs, pairing);
        let hi = self.rename_rec(Bdd(n.hi), pairs, pairing);
        let var = match pairs.binary_search_by_key(&n.var, |&(from, _)| from) {
            Ok(i) => pairs[i].1,
            Err(_) => n.var,
        };
        debug_assert!(
            self.level_of(self.top_var(lo)) > self.level_of(var)
                && self.level_of(self.top_var(hi)) > self.level_of(var),
            "pairing broke the variable order at {var}"
        );
        let r = self.mk(var, lo, hi);
        debug_assert!(!r.is_complement(), "renaming a regular edge stays regular");
        let yref = fr.0.max(r.0) >> 1;
        self.rename_cache.insert(self.gen_floor, key, r.0, yref);
        Bdd(r.0 ^ c)
    }

    /// Existential quantification over raw variable indices (the symbolic
    /// engine's state variables are not always backed by table signals).
    pub fn exists_vars(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let set = self.register_var_set(vars);
        self.and_exists(f, Bdd::TRUE, set)
    }

    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        // Canonical form: the then-edge must be regular. A complemented
        // then-child flips both children and tags the returned edge.
        let flip = hi.0 & 1;
        let (lo, hi) = (Bdd(lo.0 ^ flip), Bdd(hi.0 ^ flip));
        let key = (var, lo.0, hi.0);
        if dic_trace::enabled() {
            dic_trace::count(dic_trace::Counter::BddUniqueLookups, 1);
        }
        if let Some(&n) = self.unique.get(&key) {
            if dic_trace::enabled() {
                dic_trace::count(dic_trace::Counter::BddUniqueHits, 1);
            }
            return Bdd((n << 1) | flip);
        }
        let idx = self.nodes.len();
        assert!(idx <= MAX_NODE_INDEX, "BDD node store overflow");
        let n = idx as u32;
        self.nodes.push(Node { var, lo: lo.0, hi: hi.0 });
        self.unique.insert(key, n);
        if self.nodes.len() > self.peak_nodes {
            self.peak_nodes = self.nodes.len();
        }
        if dic_trace::enabled() {
            let live = self.nodes.len() as u64;
            dic_trace::gauge_set(dic_trace::Gauge::BddLiveNodes, live);
            dic_trace::gauge_max(dic_trace::Gauge::BddPeakNodes, live);
        }
        Bdd((n << 1) | flip)
    }

    fn node(&self, f: Bdd) -> Node {
        self.nodes[f.index()]
    }

    pub(crate) fn top_var(&self, f: Bdd) -> u32 {
        self.nodes[f.index()].var
    }

    /// The children of `f` as functions: the stored edges with the
    /// parent's complement bit pushed down.
    fn children(&self, f: Bdd) -> (Bdd, Bdd) {
        let n = self.node(f);
        let c = f.0 & 1;
        (Bdd(n.lo ^ c), Bdd(n.hi ^ c))
    }

    /// The topmost (smallest-level) variable among the roots of `f`, `g`,
    /// `h` — the branch variable of the `ite` recursion.
    fn top_of_three(&self, f: Bdd, g: Bdd, h: Bdd) -> u32 {
        let mut v = self.top_var(f);
        let mut lv = self.level_of(v);
        for cand in [self.top_var(g), self.top_var(h)] {
            let cl = self.level_of(cand);
            if cl < lv {
                v = cand;
                lv = cl;
            }
        }
        v
    }

    /// Low/high cofactors of `f` with respect to variable `var`, assuming
    /// `var <= top_var(f)` in the order.
    fn cofactors(&self, f: Bdd, var: u32) -> (Bdd, Bdd) {
        if self.top_var(f) == var {
            self.children(f)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `ite(f, g, h) = f·g ∨ ¬f·h`. The workhorse all other
    /// connectives are built from.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        let mut f = f;
        let mut g = g;
        let mut h = h;
        // Branches that repeat (or complement) the test collapse.
        if g == f {
            g = Bdd::TRUE;
        } else if g == f.complement() {
            g = Bdd::FALSE;
        }
        if h == f {
            h = Bdd::FALSE;
        } else if h == f.complement() {
            h = Bdd::TRUE;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return f.complement();
        }
        // Normalize the test regular: ite(¬f, g, h) = ite(f, h, g).
        if f.is_complement() {
            f = f.complement();
            std::mem::swap(&mut g, &mut h);
        }
        // Commutative operand order for the two binary shapes the engine
        // issues constantly: f∧g = ite(f,g,0) and f∨h = ite(f,1,h). Only
        // swap when the other operand is regular, keeping f regular.
        if h.is_false() && !g.is_complement() && g.0 < f.0 {
            std::mem::swap(&mut f, &mut g);
        } else if g.is_true() && !h.is_complement() && h.0 < f.0 {
            std::mem::swap(&mut f, &mut h);
        }
        // Normalize the then-branch regular so ¬r shares the cache entry:
        // ite(f, ¬g, ¬h) = ¬ite(f, g, h).
        let flip = g.0 & 1;
        g = Bdd(g.0 ^ flip);
        h = Bdd(h.0 ^ flip);
        let key = (f.0, g.0, h.0);
        if dic_trace::enabled() {
            dic_trace::count(dic_trace::Counter::BddIteOps, 1);
            dic_trace::count(dic_trace::Counter::BddMemoLookups, 1);
        }
        if let Some(r) = self.ite_cache.get(&key) {
            if dic_trace::enabled() {
                dic_trace::count(dic_trace::Counter::BddMemoHits, 1);
            }
            return Bdd(r ^ flip);
        }
        let v = self.top_of_three(f, g, h);
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        let yref = f.0.max(g.0).max(h.0).max(r.0) >> 1;
        self.ite_cache.insert(self.gen_floor, key, r.0, yref);
        Bdd(r.0 ^ flip)
    }

    /// Negation — with complement edges a constant-time bit flip
    /// ([`Bdd::complement`]); kept as a manager method for symmetry with
    /// the other connectives.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        f.complement()
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g.complement(), g)
    }

    /// Implication `f -> g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::TRUE)
    }

    /// Biconditional `f <-> g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, g.complement())
    }

    /// N-ary conjunction.
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = Bdd::TRUE;
        for f in fs {
            acc = self.and(acc, f);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// N-ary disjunction.
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = Bdd::FALSE;
        for f in fs {
            acc = self.or(acc, f);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// Restriction `f[signal := value]`.
    pub fn restrict(&mut self, f: Bdd, signal: SignalId, value: bool) -> Bdd {
        let var = self.var_index(signal);
        self.restrict_var(f, var, value)
    }

    fn restrict_var(&mut self, f: Bdd, var: u32, value: bool) -> Bdd {
        let fv = self.top_var(f);
        if self.level_of(fv) > self.level_of(var) {
            // f does not depend on var (or is terminal).
            return f;
        }
        let (lo, hi) = self.children(f);
        if fv == var {
            return if value { hi } else { lo };
        }
        let lo = self.restrict_var(lo, var, value);
        let hi = self.restrict_var(hi, var, value);
        self.mk(fv, lo, hi)
    }

    /// Existential quantification `∃ signal. f`.
    pub fn exists(&mut self, f: Bdd, signal: SignalId) -> Bdd {
        let lo = self.restrict(f, signal, false);
        let hi = self.restrict(f, signal, true);
        self.or(lo, hi)
    }

    /// Universal quantification `∀ signal. f`.
    pub fn forall(&mut self, f: Bdd, signal: SignalId) -> Bdd {
        let lo = self.restrict(f, signal, false);
        let hi = self.restrict(f, signal, true);
        self.and(lo, hi)
    }

    /// Existential quantification over several signals.
    pub fn exists_all(&mut self, mut f: Bdd, signals: &[SignalId]) -> Bdd {
        for &s in signals {
            f = self.exists(f, s);
        }
        f
    }

    /// Universal quantification over several signals.
    pub fn forall_all(&mut self, mut f: Bdd, signals: &[SignalId]) -> Bdd {
        for &s in signals {
            f = self.forall(f, s);
        }
        f
    }

    /// Functional composition `f[signal := g]`.
    pub fn compose(&mut self, f: Bdd, signal: SignalId, g: Bdd) -> Bdd {
        let f1 = self.restrict(f, signal, true);
        let f0 = self.restrict(f, signal, false);
        self.ite(g, f1, f0)
    }

    /// Builds the BDD of a [`BoolExpr`], registering variables on first use.
    pub fn from_expr(&mut self, e: &BoolExpr) -> Bdd {
        match e {
            BoolExpr::Const(true) => Bdd::TRUE,
            BoolExpr::Const(false) => Bdd::FALSE,
            BoolExpr::Var(id) => self.var_for_signal(*id),
            BoolExpr::Not(inner) => {
                let f = self.from_expr(inner);
                self.not(f)
            }
            BoolExpr::And(es) => {
                let mut acc = Bdd::TRUE;
                for part in es {
                    let f = self.from_expr(part);
                    acc = self.and(acc, f);
                    if acc.is_false() {
                        break;
                    }
                }
                acc
            }
            BoolExpr::Or(es) => {
                let mut acc = Bdd::FALSE;
                for part in es {
                    let f = self.from_expr(part);
                    acc = self.or(acc, f);
                    if acc.is_true() {
                        break;
                    }
                }
                acc
            }
            BoolExpr::Xor(a, b) => {
                let fa = self.from_expr(a);
                let fb = self.from_expr(b);
                self.xor(fa, fb)
            }
        }
    }

    /// Builds the BDD of a [`Cube`].
    pub fn from_cube(&mut self, cube: &Cube) -> Bdd {
        let mut acc = Bdd::TRUE;
        for &l in cube.lits() {
            let v = self.var_for_signal(l.signal());
            let lit = if l.polarity() { v } else { self.not(v) };
            acc = self.and(acc, lit);
        }
        acc
    }

    /// Evaluates `f` under a valuation of its signals.
    ///
    /// # Panics
    ///
    /// Panics if a signal in the support of `f` is outside the valuation.
    pub fn eval(&self, f: Bdd, v: &Valuation) -> bool {
        let mut cur = f;
        loop {
            if cur.is_true() {
                return true;
            }
            if cur.is_false() {
                return false;
            }
            let sig = self.var_to_signal[self.top_var(cur) as usize];
            let (lo, hi) = self.children(cur);
            cur = if v.get(sig) { hi } else { lo };
        }
    }

    /// The signals `f` actually depends on, in registration (variable-id)
    /// order — stable across reorders.
    pub fn support(&self, f: Bdd) -> Vec<SignalId> {
        self.support_vars(f)
            .into_iter()
            .map(|v| self.var_to_signal[v as usize])
            .collect()
    }

    /// The variable indices `f` actually depends on, in registration
    /// (variable-id) order — stable across reorders.
    ///
    /// Like [`BddManager::support`] but in terms of raw variables, for
    /// callers (the symbolic engine) whose variables are not all backed by
    /// table signals.
    pub fn support_vars(&self, f: Bdd) -> Vec<u32> {
        // Complement bits do not affect the support: walk node indices.
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.index()];
        let mut varset = std::collections::BTreeSet::new();
        while let Some(i) = stack.pop() {
            let n = self.nodes[i];
            if n.var == TERMINAL_VAR || !seen.insert(i) {
                continue;
            }
            varset.insert(n.var);
            stack.push((n.lo >> 1) as usize);
            stack.push((n.hi >> 1) as usize);
        }
        varset.into_iter().collect()
    }

    /// Number of BDD nodes reachable from `f` (excluding the terminal).
    /// With complement edges a function and its negation share all their
    /// nodes, so `size(f) == size(¬f)`.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.index()];
        let mut count = 0;
        while let Some(i) = stack.pop() {
            let n = self.nodes[i];
            if n.var == TERMINAL_VAR || !seen.insert(i) {
                continue;
            }
            count += 1;
            stack.push((n.lo >> 1) as usize);
            stack.push((n.hi >> 1) as usize);
        }
        count
    }

    /// One satisfying assignment as a [`Cube`] (over the support only), or
    /// `None` if `f` is unsatisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<Cube> {
        if f.is_false() {
            return None;
        }
        let mut lits = Vec::new();
        let mut cur = f;
        while !cur.is_true() {
            let sig = self.var_to_signal[self.top_var(cur) as usize];
            let (lo, hi) = self.children(cur);
            if hi.is_false() {
                lits.push(Lit::neg(sig));
                cur = lo;
            } else {
                lits.push(Lit::pos(sig));
                cur = hi;
            }
        }
        Cube::from_lits(lits)
    }

    /// Up to `limit` distinct satisfying assignments of `f`, each the cube
    /// of one BDD path (variables off the path are unconstrained, so the
    /// cubes are short where `f` is insensitive). The high branch is
    /// explored first, making `sat_cubes(f, 1)` consistent with
    /// [`BddManager::any_sat`] whenever the high branch is non-false.
    ///
    /// The symbolic gap engine uses this to read scenario catalogues
    /// directly off region BDDs instead of replaying lassos.
    pub fn sat_cubes(&self, f: Bdd, limit: usize) -> Vec<Cube> {
        let mut out = Vec::new();
        let mut stack: Vec<(Bdd, Vec<Lit>)> = vec![(f, Vec::new())];
        while let Some((g, lits)) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            if g.is_false() {
                continue;
            }
            if g.is_true() {
                out.push(Cube::from_lits(lits).expect("path literals are distinct"));
                continue;
            }
            let sig = self.var_to_signal[self.top_var(g) as usize];
            let (lo, hi) = self.children(g);
            let mut lo_lits = lits.clone();
            lo_lits.push(Lit::neg(sig));
            let mut hi_lits = lits;
            hi_lits.push(Lit::pos(sig));
            // Last-in-first-out: push low first so the high branch pops
            // (and is emitted) first.
            stack.push((lo, lo_lits));
            stack.push((hi, hi_lits));
        }
        out
    }

    /// Universal quantification over raw variable indices (the dual of
    /// [`BddManager::exists_vars`], for callers whose variables are not
    /// all backed by table signals).
    pub fn forall_vars(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let nf = self.not(f);
        let ex = self.exists_vars(nf, vars);
        self.not(ex)
    }

    /// Number of satisfying assignments over an `nvars`-variable universe.
    ///
    /// `nvars` must be at least the number of registered variables appearing
    /// in `f`'s support. Counts saturate at `u128::MAX`: past a
    /// 127-variable universe the exact count can exceed the word (already
    /// `sat_count(TRUE, 128)` is `2^128`), and a pegged maximum is more
    /// useful than the shift overflow the unchecked arithmetic used to
    /// hit (a debug panic, silently wrong counts in release).
    ///
    /// The memo is keyed on the full edge (complement bit included):
    /// computing the complement's count as `2^n - count` would defeat the
    /// saturation contract, so `f` and `¬f` are counted independently.
    pub fn sat_count(&self, f: Bdd, nvars: u32) -> u128 {
        /// `x << n`, saturating at `u128::MAX` instead of overflowing.
        fn shl_sat(x: u128, n: u32) -> u128 {
            if x == 0 {
                0
            } else if n > x.leading_zeros() {
                u128::MAX
            } else {
                x << n
            }
        }
        fn go(
            man: &BddManager,
            f: Bdd,
            nvars: u32,
            cache: &mut HashMap<u32, u128>,
        ) -> u128 {
            if f.is_false() {
                return 0;
            }
            if f.is_true() {
                return 1;
            }
            if let Some(&c) = cache.get(&f.0) {
                return c;
            }
            let v = man.top_var(f);
            let (lo_f, hi_f) = man.children(f);
            let lo = go(man, lo_f, nvars, cache);
            let hi = go(man, hi_f, nvars, cache);
            let skipped_lo = man.level_gap(v, lo_f, nvars);
            let skipped_hi = man.level_gap(v, hi_f, nvars);
            let c = shl_sat(lo, skipped_lo).saturating_add(shl_sat(hi, skipped_hi));
            cache.insert(f.0, c);
            c
        }
        let mut cache = HashMap::new();
        let total = go(self, f, nvars, &mut cache);
        // Account for variables above the root.
        shl_sat(total, self.level_gap_root(f, nvars))
    }

    fn level_gap(&self, var: u32, child: Bdd, nvars: u32) -> u32 {
        let child_var = self.top_var(child);
        let child_level = if child_var == TERMINAL_VAR {
            nvars
        } else {
            self.level_of(child_var)
        };
        child_level - self.level_of(var) - 1
    }

    fn level_gap_root(&self, f: Bdd, nvars: u32) -> u32 {
        let v = self.top_var(f);
        if v == TERMINAL_VAR {
            nvars
        } else {
            self.level_of(v)
        }
    }

    /// An irredundant sum-of-products cover of `f` (Minato–Morreale ISOP).
    ///
    /// The returned cubes are pairwise irredundant and their disjunction is
    /// exactly `f`. This is how gap terms are rendered legibly.
    pub fn cubes(&mut self, f: Bdd) -> Vec<Cube> {
        let (cover, _bdd) = self.isop(f, f);
        cover
    }

    /// Minato–Morreale ISOP between lower bound `l` and upper bound `u`
    /// (requires `l -> u`). Returns the cover and its BDD `d` with
    /// `l -> d` and `d -> u`.
    pub fn isop(&mut self, l: Bdd, u: Bdd) -> (Vec<Cube>, Bdd) {
        debug_assert!(self.implies(l, u).is_true(), "ISOP requires l -> u");
        if l.is_false() {
            return (Vec::new(), Bdd::FALSE);
        }
        if u.is_true() {
            return (vec![Cube::top()], Bdd::TRUE);
        }
        let (lv, uv) = (self.top_var(l), self.top_var(u));
        let v = if self.level_of(lv) <= self.level_of(uv) { lv } else { uv };
        let sig = self.var_to_signal[v as usize];
        let (l0, l1) = self.cofactors(l, v);
        let (u0, u1) = self.cofactors(u, v);

        // Cubes that must contain ¬v.
        let nu1 = self.not(u1);
        let l0_only = self.and(l0, nu1);
        let (c0, d0) = self.isop(l0_only, u0);

        // Cubes that must contain v.
        let nu0 = self.not(u0);
        let l1_only = self.and(l1, nu0);
        let (c1, d1) = self.isop(l1_only, u1);

        // Remainder, covered without mentioning v.
        let nd0 = self.not(d0);
        let nd1 = self.not(d1);
        let rem0 = self.and(l0, nd0);
        let rem1 = self.and(l1, nd1);
        let rem = self.or(rem0, rem1);
        let u01 = self.and(u0, u1);
        let (cd, dd) = self.isop(rem, u01);

        let mut cover = Vec::with_capacity(c0.len() + c1.len() + cd.len());
        for c in c0 {
            cover.push(c.and_lit(Lit::neg(sig)).expect("fresh literal"));
        }
        for c in c1 {
            cover.push(c.and_lit(Lit::pos(sig)).expect("fresh literal"));
        }
        cover.extend(cd);

        let hi = self.or(d1, dd);
        let lo = self.or(d0, dd);
        let var_bdd = self.mk(v, Bdd::FALSE, Bdd::TRUE);
        let d = self.ite(var_bdd, hi, lo);
        (cover, d)
    }

    /// Converts `f` back into a [`BoolExpr`] (as an irredundant SOP).
    pub fn to_expr(&mut self, f: Bdd) -> BoolExpr {
        if f.is_true() {
            return BoolExpr::tt();
        }
        if f.is_false() {
            return BoolExpr::ff();
        }
        let cover = self.cubes(f);
        BoolExpr::or(cover.into_iter().map(|cube| {
            BoolExpr::and(cube.lits().iter().map(|l| {
                let v = BoolExpr::var(l.signal());
                if l.polarity() {
                    v
                } else {
                    v.not()
                }
            }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::SignalTable;

    fn setup() -> (SignalTable, BddManager, Vec<SignalId>) {
        let mut t = SignalTable::new();
        let ids: Vec<_> = ["a", "b", "c", "d"].iter().map(|n| t.intern(n)).collect();
        (t, BddManager::new(), ids)
    }

    #[test]
    fn canonicity_de_morgan() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let ab = m.and(a, b);
        let lhs = m.not(ab);
        let na = m.not(a);
        let nb = m.not(b);
        let rhs = m.or(na, nb);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn tautology_and_contradiction() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let na = m.not(a);
        assert!(m.or(a, na).is_true());
        assert!(m.and(a, na).is_false());
    }

    #[test]
    fn negation_is_free_and_shares_nodes() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let f = m.xor(a, b);
        let before = m.node_count();
        // Complement edges: negation allocates nothing and double
        // negation is the identity on the handle.
        let g = m.not(f);
        assert_eq!(m.node_count(), before);
        assert_eq!(m.not(g), f);
        assert_ne!(g, f);
        assert_eq!(m.size(f), m.size(g), "f and ¬f share all nodes");
        // The constants are each other's complements around one terminal.
        assert_eq!(Bdd::TRUE.complement(), Bdd::FALSE);
        assert!(m.node_count() >= 1);
    }

    #[test]
    fn eval_agrees_with_expr() {
        let (t, mut m, ids) = setup();
        let e = BoolExpr::or([
            BoolExpr::and([BoolExpr::var(ids[0]), BoolExpr::var(ids[1]).not()]),
            BoolExpr::xor(BoolExpr::var(ids[2]), BoolExpr::var(ids[3])),
        ]);
        let f = m.from_expr(&e);
        for bits in 0..16u64 {
            let mut v = Valuation::all_false(t.len());
            v.assign_key(&ids, bits);
            assert_eq!(m.eval(f, &v), e.eval(&v), "bits {bits:04b}");
        }
    }

    #[test]
    fn quantification() {
        let (t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let f = m.and(a, b);
        // ∃a. a&b == b ; ∀a. a&b == false ; ∀a. a|!a&b ... basic checks.
        let ex = m.exists(f, ids[0]);
        assert_eq!(ex, b);
        let fa = m.forall(f, ids[0]);
        assert!(fa.is_false());
        let g = m.or(a, b);
        let fg = m.forall(g, ids[0]);
        assert_eq!(fg, b);
        let _ = t;
    }

    #[test]
    fn compose_substitutes() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let c = m.var_for_signal(ids[2]);
        let f = m.xor(a, c);
        let bc = m.and(b, c);
        let comp = m.compose(f, ids[0], bc); // (b&c) ^ c
        let expect_hi = m.not(b); // when c=1: (b)^1 = !b
        let restricted = m.restrict(comp, ids[2], true);
        assert_eq!(restricted, expect_hi);
        let restricted0 = m.restrict(comp, ids[2], false);
        assert!(restricted0.is_false()); // (b&0)^0 = 0
    }

    #[test]
    fn sat_count_counts() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let f = m.or(a, b);
        // over 2 vars: 3 satisfying rows; over 4 vars: 3 * 4 = 12.
        assert_eq!(m.sat_count(f, 2), 3);
        let _c = m.var_for_signal(ids[2]);
        let _d = m.var_for_signal(ids[3]);
        assert_eq!(m.sat_count(f, 4), 12);
        assert_eq!(m.sat_count(Bdd::TRUE, 4), 16);
        assert_eq!(m.sat_count(Bdd::FALSE, 4), 0);
        // Complemented edges count their own paths, not 2^n - count.
        let nf = m.not(f);
        assert_eq!(m.sat_count(nf, 2), 1);
        assert_eq!(m.sat_count(nf, 4), 4);
    }

    #[test]
    fn sat_count_saturates_past_word_width() {
        let (_t, mut m, ids) = setup();
        // 127 free variables is the largest exact power: 2^127 fits.
        assert_eq!(m.sat_count(Bdd::TRUE, 127), 1u128 << 127);
        // At 128 the exact count is 2^128: saturate, don't overflow.
        assert_eq!(m.sat_count(Bdd::TRUE, 128), u128::MAX);
        assert_eq!(m.sat_count(Bdd::TRUE, 500), u128::MAX);
        // FALSE stays 0 at any width.
        assert_eq!(m.sat_count(Bdd::FALSE, 500), 0);
        // A one-variable function over a 128-variable universe: the count
        // is 2^127 exactly — the boundary where the old shift was fine.
        let a = m.var_for_signal(ids[0]);
        assert_eq!(m.sat_count(a, 128), 1u128 << 127);
        // Over 129 variables it would be 2^128: saturated.
        assert_eq!(m.sat_count(a, 129), u128::MAX);
        // The complement saturates independently (no 2^n - MAX underflow):
        // ¬a over 128 vars is also 2^127; over 129, saturated.
        let na = m.not(a);
        assert_eq!(m.sat_count(na, 128), 1u128 << 127);
        assert_eq!(m.sat_count(na, 129), u128::MAX);
    }

    #[test]
    fn any_sat_satisfies() {
        let (t, mut m, ids) = setup();
        let e = BoolExpr::and([
            BoolExpr::or([BoolExpr::var(ids[0]), BoolExpr::var(ids[1])]),
            BoolExpr::var(ids[2]).not(),
        ]);
        let f = m.from_expr(&e);
        let cube = m.any_sat(f).expect("satisfiable");
        // Extend the cube to a full valuation and check it satisfies f.
        let mut v = Valuation::all_false(t.len());
        for l in cube.lits() {
            v.set(l.signal(), l.polarity());
        }
        assert!(m.eval(f, &v));
        assert!(m.any_sat(Bdd::FALSE).is_none());
        // Negated functions extract satisfying cubes through the
        // complement bit too.
        let nf = m.not(f);
        let ncube = m.any_sat(nf).expect("complement satisfiable");
        let mut nv = Valuation::all_false(t.len());
        for l in ncube.lits() {
            nv.set(l.signal(), l.polarity());
        }
        assert!(!m.eval(f, &nv));
    }

    #[test]
    fn isop_cover_is_exact() {
        let (_t, mut m, ids) = setup();
        // f = a&!b | c&d | a&c
        let e = BoolExpr::or([
            BoolExpr::and([BoolExpr::var(ids[0]), BoolExpr::var(ids[1]).not()]),
            BoolExpr::and([BoolExpr::var(ids[2]), BoolExpr::var(ids[3])]),
            BoolExpr::and([BoolExpr::var(ids[0]), BoolExpr::var(ids[2])]),
        ]);
        let f = m.from_expr(&e);
        let cover = m.cubes(f);
        let mut back = Bdd::FALSE;
        for cube in &cover {
            let cb = m.from_cube(cube);
            back = m.or(back, cb);
        }
        assert_eq!(back, f, "cover must rebuild exactly f");
        // And the same through a complemented root.
        let nf = m.not(f);
        let ncover = m.cubes(nf);
        let mut nback = Bdd::FALSE;
        for cube in &ncover {
            let cb = m.from_cube(cube);
            nback = m.or(nback, cb);
        }
        assert_eq!(nback, nf, "cover of the complement rebuilds ¬f");
    }

    #[test]
    fn to_expr_round_trips() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let c = m.var_for_signal(ids[2]);
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let e = m.to_expr(f);
        let f2 = m.from_expr(&e);
        assert_eq!(f, f2);
        assert_eq!(m.to_expr(Bdd::TRUE), BoolExpr::tt());
        assert_eq!(m.to_expr(Bdd::FALSE), BoolExpr::ff());
    }

    #[test]
    fn support_and_size() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let c = m.var_for_signal(ids[2]);
        let f = m.and(a, c);
        assert_eq!(m.support(f), vec![ids[0], ids[2]]);
        assert_eq!(m.size(f), 2);
        assert_eq!(m.size(Bdd::TRUE), 0);
        assert_eq!(m.size(Bdd::FALSE), 0);
        let nf = m.not(f);
        assert_eq!(m.support(nf), vec![ids[0], ids[2]]);
    }

    #[test]
    fn and_exists_matches_naive() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let c = m.var_for_signal(ids[2]);
        let d = m.var_for_signal(ids[3]);
        let nb = m.not(b);
        let f = m.or(a, nb);
        let cd = m.and(c, d);
        let g = m.xor(b, cd);
        let vb = m.var_index(ids[1]);
        let vc = m.var_index(ids[2]);
        let set = m.register_var_set(&[vb, vc]);
        let fast = m.and_exists(f, g, set);
        let conj = m.and(f, g);
        let naive = m.exists_all(conj, &[ids[1], ids[2]]);
        assert_eq!(fast, naive);
        // Quantifying nothing is plain conjunction.
        let empty = m.register_var_set(&[]);
        assert_eq!(m.and_exists(f, g, empty), conj);
        // One operand true degrades to plain quantification.
        let quantified = m.exists_all(g, &[ids[1], ids[2]]);
        assert_eq!(m.and_exists(g, Bdd::TRUE, set), quantified);
        // New complement-edge short-circuits: f ∧ ¬f and f ∧ f.
        let ng = m.not(g);
        assert!(m.and_exists(g, ng, set).is_false());
        assert_eq!(m.and_exists(g, g, set), quantified);
    }

    #[test]
    fn sat_cubes_enumerates_disjoint_paths() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let f = m.or(a, b); // paths: a, !a&b
        let cubes = m.sat_cubes(f, 10);
        assert_eq!(cubes.len(), 2);
        // Each cube satisfies f; their disjunction rebuilds f exactly
        // (paths partition the satisfying space).
        let mut back = Bdd::FALSE;
        for c in &cubes {
            let cb = m.from_cube(c);
            let implied = m.implies(cb, f);
            assert!(implied.is_true());
            back = m.or(back, cb);
        }
        assert_eq!(back, f);
        // The limit truncates; the first cube matches any_sat.
        let one = m.sat_cubes(f, 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0], m.any_sat(f).unwrap());
        assert!(m.sat_cubes(Bdd::FALSE, 4).is_empty());
        assert_eq!(m.sat_cubes(Bdd::TRUE, 4).len(), 1);
        // Complemented roots enumerate the complement's paths.
        let nf = m.not(f); // !a & !b — one path
        let ncubes = m.sat_cubes(nf, 10);
        assert_eq!(ncubes.len(), 1);
        let ncb = m.from_cube(&ncubes[0]);
        assert_eq!(ncb, nf);
    }

    #[test]
    fn forall_vars_matches_forall_all() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let f = m.or(a, b);
        let va = m.var_index(ids[0]);
        assert_eq!(m.forall_vars(f, &[va]), m.forall(f, ids[0]));
        let g = m.and(a, b);
        let vb = m.var_index(ids[1]);
        assert!(m.forall_vars(g, &[va, vb]).is_false());
    }

    #[test]
    fn exists_vars_matches_exists_all() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let f = m.and(a, b);
        let va = m.var_index(ids[0]);
        assert_eq!(m.exists_vars(f, &[va]), m.exists(f, ids[0]));
    }

    #[test]
    fn rename_swaps_variable_banks() {
        // Interleaved banks: a (curr), b (next), c (curr), d (next).
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let _b = m.var_for_signal(ids[1]);
        let c = m.var_for_signal(ids[2]);
        let _d = m.var_for_signal(ids[3]);
        let (va, vb, vc, vd) = (
            m.var_index(ids[0]),
            m.var_index(ids[1]),
            m.var_index(ids[2]),
            m.var_index(ids[3]),
        );
        // f over the "next" bank: b & !d.
        let b = m.var_for_signal(ids[1]);
        let d = m.var_for_signal(ids[3]);
        let nd = m.not(d);
        let f = m.and(b, nd);
        let next_to_curr = m.register_pairing(&[(vb, va), (vd, vc)]);
        let renamed = m.rename(f, next_to_curr);
        let nc = m.not(c);
        let expect = m.and(a, nc);
        assert_eq!(renamed, expect);
        // Functions not mentioning paired variables are untouched.
        assert_eq!(m.rename(a, next_to_curr), a);
        assert_eq!(m.rename(Bdd::TRUE, next_to_curr), Bdd::TRUE);
        // Renaming commutes with complement (shared memo entry).
        let nf = m.not(f);
        let nrenamed = m.rename(nf, next_to_curr);
        assert_eq!(nrenamed, renamed.complement());
    }

    #[test]
    fn registration_is_idempotent() {
        let (_t, mut m, ids) = setup();
        let va = m.var_index(ids[0]);
        let vb = m.var_index(ids[1]);
        assert_eq!(
            m.register_var_set(&[vb, va, va]),
            m.register_var_set(&[va, vb])
        );
        assert_eq!(
            m.register_pairing(&[(va, vb)]),
            m.register_pairing(&[(va, vb)])
        );
    }

    #[test]
    #[should_panic(expected = "order-preserving")]
    fn non_monotone_pairing_rejected() {
        let (_t, mut m, ids) = setup();
        let va = m.var_index(ids[0]);
        let vb = m.var_index(ids[1]);
        let vc = m.var_index(ids[2]);
        let vd = m.var_index(ids[3]);
        // a -> d and c -> b reverses the order of the targets.
        m.register_pairing(&[(va, vd), (vc, vb)]);
    }

    #[test]
    fn rollback_frees_scratch_nodes_and_keeps_survivors() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let keep = m.and(a, b);
        let cp = m.checkpoint();
        let before = m.node_count();
        // Scratch work: new nodes that will be rolled back.
        let c = m.var_for_signal(ids[2]);
        let scratch = m.xor(keep, c);
        assert!(m.node_count() > before);
        assert!(!scratch.is_false());
        m.rollback(&cp);
        assert_eq!(m.node_count(), before);
        // Survivors stay valid and canonical: rebuilding reuses them.
        assert_eq!(m.and(a, b), keep);
        // The scratch function rebuilds to a *fresh but equal* node.
        let c2 = m.var_for_signal(ids[2]);
        let scratch2 = m.xor(keep, c2);
        let nd = m.not(scratch2);
        let back = m.not(nd);
        assert_eq!(back, scratch2);
        // Rolling back with nothing new keeps the memo tables.
        let cp2 = m.checkpoint();
        let warm = m.cache_entries();
        m.rollback(&cp2);
        assert_eq!(m.cache_entries(), warm);
    }

    #[test]
    fn generational_rollback_keeps_old_memos_and_tracks_stats() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let keep = m.and(a, b);
        let warm = m.cache_entries();
        assert!(warm > 0);
        let cp = m.checkpoint();
        let base_nodes = m.node_count();
        // Scratch region: nodes and young memo entries.
        let c = m.var_for_signal(ids[2]);
        let d = m.var_for_signal(ids[3]);
        let cd = m.xor(c, d);
        let scratch = m.or(keep, cd);
        assert!(!scratch.is_false());
        let scratch_nodes = m.node_count() - base_nodes;
        assert!(scratch_nodes > 0);
        let peak = m.peak_node_count();
        assert!(peak >= m.node_count());

        m.rollback(&cp);
        // Pre-checkpoint memos survive (old generation untouched)…
        assert!(m.cache_entries() >= warm, "old memo generation must survive");
        // …while every scratch node is gone and the stats say so.
        assert_eq!(m.node_count(), base_nodes);
        assert_eq!(m.gc_collections(), 1);
        assert_eq!(m.gc_freed_nodes(), scratch_nodes);
        // The peak remembers the rolled-back high-water mark.
        assert_eq!(m.peak_node_count(), peak);
        assert!(m.peak_node_count() > m.node_count());
        // Survivor handles still canonical.
        assert_eq!(m.and(a, b), keep);
    }

    #[test]
    fn cache_accounting_moves() {
        let (_t, mut m, ids) = setup();
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let _f = m.and(a, b);
        assert!(m.cache_entries() > 0);
        let before_nodes = m.node_count();
        m.clear_op_caches();
        assert_eq!(m.cache_entries(), 0);
        assert_eq!(m.node_count(), before_nodes, "nodes survive a cache clear");
        // Handles stay canonical after clearing.
        let f2 = m.and(a, b);
        assert_eq!(f2, _f);
    }

    #[test]
    fn from_cube_matches_lits() {
        let (_t, mut m, ids) = setup();
        let cube = Cube::from_lits([Lit::pos(ids[0]), Lit::neg(ids[1])]).unwrap();
        let f = m.from_cube(&cube);
        let a = m.var_for_signal(ids[0]);
        let b = m.var_for_signal(ids[1]);
        let nb = m.not(b);
        let expect = m.and(a, nb);
        assert_eq!(f, expect);
    }
}
