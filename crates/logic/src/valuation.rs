//! Dense Boolean assignments to signals.

use crate::signal::{SignalId, SignalTable};
use std::fmt;

/// A dense assignment of Boolean values to the first `len` signals of a
/// [`SignalTable`].
///
/// This is the paper's notion of a *state*: "a valuation of the signals at a
/// given time" (Section 2). Valuations are used as simulator states, FSM
/// state labels and Kripke-structure states, so they are compact (bit-packed)
/// and hashable.
///
/// # Example
///
/// ```
/// use dic_logic::{SignalTable, Valuation};
///
/// let mut t = SignalTable::new();
/// let a = t.intern("a");
/// let b = t.intern("b");
/// let mut v = Valuation::all_false(t.len());
/// v.set(b, true);
/// assert!(!v.get(a));
/// assert!(v.get(b));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Valuation {
    len: usize,
    bits: Vec<u64>,
}

impl Valuation {
    /// A valuation over `len` signals, all false.
    pub fn all_false(len: usize) -> Self {
        Valuation {
            len,
            bits: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of signals covered by this valuation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the valuation covers zero signals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of signal `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id.index() >= self.len()`.
    pub fn get(&self, id: SignalId) -> bool {
        let i = id.index();
        assert!(i < self.len, "signal {i} out of range (len {})", self.len);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets signal `id` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `id.index() >= self.len()`.
    pub fn set(&mut self, id: SignalId, value: bool) {
        let i = id.index();
        assert!(i < self.len, "signal {i} out of range (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.bits[i / 64] |= mask;
        } else {
            self.bits[i / 64] &= !mask;
        }
    }

    /// Builds a valuation from an iterator of `(signal, value)` pairs over a
    /// table of `len` signals; unmentioned signals are false.
    pub fn from_pairs<I>(len: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (SignalId, bool)>,
    {
        let mut v = Valuation::all_false(len);
        for (id, val) in pairs {
            v.set(id, val);
        }
        v
    }

    /// Extracts the values of `ids` as a packed `u64` key (low bit = first
    /// id). Useful for indexing FSM states by latch subsets.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 ids are given.
    pub fn project_key(&self, ids: &[SignalId]) -> u64 {
        assert!(ids.len() <= 64, "projection wider than 64 bits");
        let mut key = 0u64;
        for (bit, &id) in ids.iter().enumerate() {
            if self.get(id) {
                key |= 1 << bit;
            }
        }
        key
    }

    /// Writes the values of `ids` from a packed `u64` key produced by
    /// [`Valuation::project_key`].
    pub fn assign_key(&mut self, ids: &[SignalId], key: u64) {
        for (bit, &id) in ids.iter().enumerate() {
            self.set(id, key >> bit & 1 == 1);
        }
    }

    /// Renders the valuation as `name=0/1` pairs using `table` for names.
    pub fn display<'a>(&'a self, table: &'a SignalTable) -> DisplayValuation<'a> {
        DisplayValuation { v: self, table }
    }
}

impl fmt::Debug for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Valuation[")?;
        for i in 0..self.len {
            let bit = self.bits[i / 64] >> (i % 64) & 1;
            write!(f, "{bit}")?;
        }
        write!(f, "]")
    }
}

/// Displays a [`Valuation`] with signal names; created by
/// [`Valuation::display`].
pub struct DisplayValuation<'a> {
    v: &'a Valuation,
    table: &'a SignalTable,
}

impl fmt::Display for DisplayValuation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (id, name) in self.table.iter() {
            if id.index() >= self.v.len() {
                break;
            }
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{name}={}", u8::from(self.v.get(id)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table3() -> (SignalTable, SignalId, SignalId, SignalId) {
        let mut t = SignalTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let c = t.intern("c");
        (t, a, b, c)
    }

    #[test]
    fn get_set_round_trip() {
        let (t, a, b, c) = table3();
        let mut v = Valuation::all_false(t.len());
        v.set(b, true);
        assert!(!v.get(a) && v.get(b) && !v.get(c));
        v.set(b, false);
        assert!(!v.get(b));
    }

    #[test]
    fn works_past_64_signals() {
        let mut t = SignalTable::new();
        let ids: Vec<_> = (0..130).map(|i| t.intern(&format!("s{i}"))).collect();
        let mut v = Valuation::all_false(t.len());
        v.set(ids[129], true);
        v.set(ids[63], true);
        v.set(ids[64], true);
        assert!(v.get(ids[63]) && v.get(ids[64]) && v.get(ids[129]));
        assert!(!v.get(ids[62]) && !v.get(ids[65]));
    }

    #[test]
    fn project_and_assign_key() {
        let (t, a, _b, c) = table3();
        let mut v = Valuation::all_false(t.len());
        v.assign_key(&[a, c], 0b10);
        assert!(!v.get(a) && v.get(c));
        assert_eq!(v.project_key(&[a, c]), 0b10);
        assert_eq!(v.project_key(&[c, a]), 0b01);
    }

    #[test]
    fn equal_valuations_hash_equal() {
        use std::collections::HashSet;
        let (t, a, ..) = table3();
        let mut v1 = Valuation::all_false(t.len());
        let mut v2 = Valuation::all_false(t.len());
        v1.set(a, true);
        v2.set(a, true);
        let mut set = HashSet::new();
        set.insert(v1);
        assert!(set.contains(&v2));
    }

    #[test]
    fn display_uses_names() {
        let (t, _a, b, _c) = table3();
        let mut v = Valuation::all_false(t.len());
        v.set(b, true);
        assert_eq!(v.display(&t).to_string(), "a=0 b=1 c=0");
    }

    #[test]
    fn from_pairs_defaults_false() {
        let (t, a, _b, c) = table3();
        let v = Valuation::from_pairs(t.len(), [(c, true), (a, false)]);
        assert!(!v.get(a) && v.get(c));
    }
}
