//! A small conflict-driven clause-learning SAT solver.
//!
//! Classic MiniSat-style architecture, dependency-free and deterministic:
//!
//! * **two watched literals** per clause for unit propagation,
//! * **first-UIP conflict analysis** with learned-clause assertion and
//!   non-chronological backjumping,
//! * **VSIDS-style decisions**: per-variable activities bumped on conflict
//!   participation and decayed geometrically, with ties broken by the
//!   *smallest variable index* — the solver is a deterministic function of
//!   the clause list, which the byte-identical-output contract of the
//!   BMC tier leans on,
//! * geometric **restarts** (activities survive, the trail resets).
//!
//! The solver takes an optional **conflict budget**: exhausting it returns
//! [`SatResult::Unknown`], letting the bounded tier fall through to the
//! unbounded engines instead of stalling on a hard instance. The budget is
//! part of the input, so verdicts stay deterministic.

use crate::cnf::{Cnf, SatLit, Var};

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; the vector assigns every variable by index.
    Sat(Vec<bool>),
    /// Proved unsatisfiable.
    Unsat,
    /// Conflict budget exhausted before a verdict.
    Unknown,
}

/// Sentinel for "no reason clause" (decision or unassigned).
const NO_REASON: u32 = u32::MAX;

#[derive(Clone)]
struct Clause {
    lits: Vec<SatLit>,
}

/// Counters a solve accumulates, surfaced through `dic_trace` by
/// [`Solver::solve`] on completion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Decision-variable picks.
    pub decisions: u64,
    /// Conflicts hit (equals the number of analysis rounds).
    pub conflicts: u64,
    /// Clauses learned from first-UIP analysis.
    pub learned_clauses: u64,
    /// Unit propagations performed.
    pub propagations: u64,
}

/// The CDCL solver; build with [`Solver::new`] from a finished [`Cnf`].
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// `watches[lit.code()]`: indices of clauses currently watching `lit`
    /// (they must be revisited when `lit` becomes false).
    watches: Vec<Vec<u32>>,
    /// Assignment per variable: `None` unassigned.
    assign: Vec<Option<bool>>,
    /// Assigned literals in assignment order.
    trail: Vec<SatLit>,
    /// Trail index where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate from.
    qhead: usize,
    /// Clause index that implied each variable (`NO_REASON` for decisions).
    reason: Vec<u32>,
    /// Decision level of each variable's assignment.
    level: Vec<u32>,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Set when an input clause is empty or a top-level conflict exists.
    unsat: bool,
    stats: SolverStats,
}

/// Geometric activity decay per conflict (MiniSat's stock 0.95).
const VAR_DECAY: f64 = 0.95;
/// Activity rescale threshold.
const RESCALE_AT: f64 = 1e100;
/// First restart after this many conflicts; each restart interval grows
/// geometrically by 3/2.
const RESTART_FIRST: u64 = 100;

impl Solver {
    /// Builds a solver over the finished formula.
    pub fn new(cnf: Cnf) -> Self {
        let (num_vars, raw) = cnf.into_parts();
        let n = num_vars as usize;
        let mut s = Solver {
            num_vars: n,
            clauses: Vec::with_capacity(raw.len()),
            watches: vec![Vec::new(); 2 * n],
            assign: vec![None; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            qhead: 0,
            reason: vec![NO_REASON; n],
            level: vec![0; n],
            activity: vec![0.0; n],
            var_inc: 1.0,
            seen: vec![false; n],
            unsat: false,
            stats: SolverStats::default(),
        };
        for c in raw {
            s.add_input_clause(c);
            if s.unsat {
                break;
            }
        }
        s
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    fn add_input_clause(&mut self, lits: Vec<SatLit>) {
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                // Top-level unit: enqueue now, conflict means UNSAT.
                match self.value(lits[0]) {
                    Some(false) => self.unsat = true,
                    Some(true) => {}
                    None => self.enqueue(lits[0], NO_REASON),
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[lits[0].negated().code()].push(idx);
                self.watches[lits[1].negated().code()].push(idx);
                self.clauses.push(Clause { lits });
            }
        }
    }

    fn value(&self, l: SatLit) -> Option<bool> {
        self.assign[l.var().index()].map(|v| v == l.is_pos())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: SatLit, reason: u32) {
        let v = l.var().index();
        debug_assert!(self.assign[v].is_none());
        self.assign[v] = Some(l.is_pos());
        self.reason[v] = reason;
        self.level[v] = self.decision_level();
        self.trail.push(l);
    }

    /// Propagates until fixpoint; returns the conflicting clause index, if
    /// any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // Clauses watching ¬p (registered under `watches[p]`) must
            // find a new watch or become unit.
            let false_lit = p.negated();
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < ws.len() {
                self.stats.propagations += 1;
                let ci = ws[i];
                let clause = &mut self.clauses[ci as usize];
                // Normalize: the false literal sits at position 1.
                if clause.lits[0] == false_lit {
                    clause.lits.swap(0, 1);
                }
                debug_assert_eq!(clause.lits[1], false_lit);
                let first = clause.lits[0];
                if self.assign[first.var().index()].map(|v| v == first.is_pos())
                    == Some(true)
                {
                    i += 1; // already satisfied, keep the watch
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let mut moved = false;
                for k in 2..clause.lits.len() {
                    let l = clause.lits[k];
                    if self.assign[l.var().index()].map(|v| v == l.is_pos())
                        != Some(false)
                    {
                        clause.lits.swap(1, k);
                        self.watches[l.negated().code()].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                match self.value(first) {
                    None => {
                        self.enqueue(first, ci);
                        i += 1;
                    }
                    Some(false) => {
                        // Conflict: restore the watch list and report.
                        self.watches[p.code()] = ws;
                        return Some(ci);
                    }
                    Some(true) => unreachable!("checked above"),
                }
            }
            self.watches[p.code()] = ws;
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > RESCALE_AT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_AT;
            }
            self.var_inc *= 1.0 / RESCALE_AT;
        }
    }

    fn decay(&mut self) {
        self.var_inc *= 1.0 / VAR_DECAY;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: u32) -> (Vec<SatLit>, u32) {
        let mut learnt: Vec<SatLit> = vec![SatLit::pos(Var(0))]; // slot 0 = UIP
        let mut counter = 0usize;
        let mut p: Option<SatLit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        loop {
            // Skip the asserted literal itself on continuation rounds.
            let start = usize::from(p.is_some());
            let reason_lits = self.clauses[confl as usize].lits.clone();
            for &q in &reason_lits[start..] {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = lit.negated();
                break;
            }
            confl = self.reason[lit.var().index()];
            debug_assert_ne!(confl, NO_REASON);
            p = Some(lit);
        }
        for l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        // Backjump to the second-highest level in the clause.
        let mut back = 0;
        let mut at = 1;
        for (k, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > back {
                back = lv;
                at = k;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, at);
        }
        (learnt, back)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let start = self.trail_lim.pop().expect("level > 0");
            for l in self.trail.drain(start..) {
                let v = l.var().index();
                self.assign[v] = None;
                self.reason[v] = NO_REASON;
            }
        }
        self.qhead = self.trail.len();
    }

    /// Records a learned clause and enqueues its asserting literal.
    fn learn(&mut self, learnt: Vec<SatLit>) {
        self.stats.learned_clauses += 1;
        if learnt.len() == 1 {
            self.enqueue(learnt[0], NO_REASON);
            return;
        }
        let idx = self.clauses.len() as u32;
        self.watches[learnt[0].negated().code()].push(idx);
        self.watches[learnt[1].negated().code()].push(idx);
        let asserting = learnt[0];
        self.clauses.push(Clause { lits: learnt });
        self.enqueue(asserting, idx);
    }

    /// The unassigned variable with the highest activity; ties break
    /// toward the smallest index (the determinism contract).
    fn pick_branch(&self) -> Option<Var> {
        let mut best: Option<(f64, usize)> = None;
        for v in 0..self.num_vars {
            if self.assign[v].is_none() {
                let a = self.activity[v];
                match best {
                    Some((ba, _)) if ba >= a => {}
                    _ => best = Some((a, v)),
                }
            }
        }
        best.map(|(_, v)| Var(v as u32))
    }

    /// Decides satisfiability. `max_conflicts` bounds the search
    /// (`None` = run to a verdict).
    pub fn solve(&mut self, max_conflicts: Option<u64>) -> SatResult {
        // `sat.solve` injection site: any non-panic kind degrades to
        // Unknown, which every caller treats as "no refutation found" —
        // unconditionally sound for the bounded tier.
        match dic_fault::hit(dic_fault::Site::SatSolve) {
            Some(dic_fault::FaultKind::Panic) => dic_fault::injected_panic(),
            Some(_) => return SatResult::Unknown,
            None => {}
        }
        let result = self.run(max_conflicts);
        if dic_trace::enabled() {
            dic_trace::count(dic_trace::Counter::SatDecisions, self.stats.decisions);
            dic_trace::count(dic_trace::Counter::SatConflicts, self.stats.conflicts);
            dic_trace::count(
                dic_trace::Counter::SatLearnedClauses,
                self.stats.learned_clauses,
            );
        }
        result
    }

    fn run(&mut self, max_conflicts: Option<u64>) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        let mut restart_at = RESTART_FIRST;
        let mut conflicts_here = 0u64;
        loop {
            if let Some(ci) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    return SatResult::Unsat;
                }
                let (learnt, back) = self.analyze(ci);
                self.cancel_until(back);
                self.learn(learnt);
                self.decay();
                if let Some(budget) = max_conflicts {
                    if self.stats.conflicts >= budget {
                        self.cancel_until(0);
                        return SatResult::Unknown;
                    }
                }
                if conflicts_here >= restart_at {
                    conflicts_here = 0;
                    restart_at += restart_at / 2;
                    self.cancel_until(0);
                    // Cooperative deadline checkpoint at the restart
                    // boundary: the trail is already unwound to level 0,
                    // so Unknown here leaves the solver reusable.
                    if dic_fault::deadline_expired() {
                        return SatResult::Unknown;
                    }
                }
            } else {
                match self.pick_branch() {
                    None => {
                        let model = self
                            .assign
                            .iter()
                            .map(|a| a.expect("complete assignment"))
                            .collect();
                        self.cancel_until(0);
                        return SatResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        // Deterministic polarity: try false first (runs
                        // and automaton codes are sparse, so negatives
                        // satisfy most constraints immediately).
                        self.enqueue(SatLit::neg(v), NO_REASON);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(cnf: &mut Cnf, n: usize) -> Vec<SatLit> {
        (0..n).map(|_| SatLit::pos(cnf.new_var())).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new(Cnf::new());
        assert_eq!(s.solve(None), SatResult::Sat(Vec::new()));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        cnf.add_clause([]);
        assert_eq!(Solver::new(cnf).solve(None), SatResult::Unsat);
    }

    #[test]
    fn unit_contradiction_is_unsat() {
        let mut cnf = Cnf::new();
        let a = SatLit::pos(cnf.new_var());
        cnf.add_clause([a]);
        cnf.add_clause([a.negated()]);
        assert_eq!(Solver::new(cnf).solve(None), SatResult::Unsat);
    }

    #[test]
    fn simple_model_found() {
        let mut cnf = Cnf::new();
        let v = lits(&mut cnf, 2);
        cnf.add_clause([v[0], v[1]]);
        cnf.add_clause([v[0].negated(), v[1]]);
        cnf.add_clause([v[1].negated(), v[0]]);
        match Solver::new(cnf).solve(None) {
            SatResult::Sat(m) => {
                assert!(m[0] && m[1]);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j. Each pigeon somewhere; no two
        // pigeons share a hole. Classic small UNSAT with real conflicts.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<SatLit>> = (0..3).map(|_| lits(&mut cnf, 2)).collect();
        for row in &p {
            cnf.add_clause(row.iter().copied());
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    cnf.add_clause([a.negated(), b.negated()]);
                }
            }
        }
        let mut s = Solver::new(cnf);
        assert_eq!(s.solve(None), SatResult::Unsat);
        assert!(s.stats().conflicts > 0, "analysis actually exercised");
    }

    #[test]
    fn xor_chain_satisfied_consistently() {
        // x0 ⊕ x1 = t, x1 ⊕ x2 = t', chained constraints with a forced
        // parity — checks Tseitin + solving end to end.
        let mut cnf = Cnf::new();
        let v = lits(&mut cnf, 3);
        let x01 = cnf.lit_xor(v[0], v[1]);
        let x12 = cnf.lit_xor(v[1], v[2]);
        cnf.add_clause([x01]); // x0 != x1
        cnf.add_clause([x12]); // x1 != x2
        cnf.add_clause([v[0]]); // x0 = 1
        match Solver::new(cnf).solve(None) {
            SatResult::Sat(m) => {
                assert!(m[0] && !m[1] && m[2]);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A formula needing some search, with a 1-conflict budget.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<SatLit>> = (0..5).map(|_| lits(&mut cnf, 4)).collect();
        for row in &p {
            cnf.add_clause(row.iter().copied());
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    cnf.add_clause([a.negated(), b.negated()]);
                }
            }
        }
        assert_eq!(Solver::new(cnf).solve(Some(1)), SatResult::Unknown);
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut cnf = Cnf::new();
            let v = lits(&mut cnf, 6);
            cnf.add_clause([v[0], v[1], v[2]]);
            cnf.add_clause([v[0].negated(), v[3]]);
            cnf.add_clause([v[3].negated(), v[4].negated()]);
            cnf.add_clause([v[1].negated(), v[4]]);
            cnf.add_clause([v[2], v[5]]);
            cnf.add_clause([v[5].negated(), v[0]]);
            Solver::new(cnf)
        };
        let r1 = build().solve(None);
        let r2 = build().solve(None);
        assert_eq!(r1, r2, "same formula, same verdict and model");
    }

    #[test]
    fn exactly_one_blocks_pairs() {
        let mut cnf = Cnf::new();
        let v = lits(&mut cnf, 3);
        cnf.exactly_one(&v);
        cnf.add_clause([v[1]]);
        match Solver::new(cnf).solve(None) {
            SatResult::Sat(m) => {
                assert!(!m[0] && m[1] && !m[2]);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }
}
