//! Bounded SAT refutation for the SpecMatcher design-intent-coverage
//! toolkit.
//!
//! The gap phase of the paper's Algorithm 1 spends most of its wall time
//! rejecting closure candidates whose counterexamples live at shallow
//! depth — each rejection paid for with a full Emerson–Lei fixpoint or an
//! explicit product search. This crate provides the cheap tier in front of
//! both: a from-scratch **CDCL SAT solver** ([`Solver`]) and a **bounded
//! lasso encoder** ([`bounded_lasso`]) that unrolls the netlist transition
//! relation and the conjunct automata `k` steps and asks for an ultimately
//! periodic run within that bound.
//!
//! The tier is *refutation-only*: a SAT answer is a genuine run (it is
//! re-settled through the netlist evaluator and re-verified with the
//! word-level LTL semantics before being trusted), while UNSAT proves
//! nothing and falls through to the unbounded engines. That asymmetry is
//! what keeps the reported gap-property sets byte-identical whether the
//! tier runs or not — see `DESIGN.md` §"Bounded refutation tier".
//!
//! Everything here is dependency-free and deterministic: watched-literal
//! propagation, first-UIP learning, VSIDS-style decay with ties broken by
//! variable index, and a fixed conflict budget per query.
//!
//! # Example
//!
//! ```
//! use dic_logic::SignalTable;
//! use dic_ltl::Ltl;
//! use dic_netlist::ModuleBuilder;
//! use dic_sat::bounded_lasso;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut t = SignalTable::new();
//! let mut b = ModuleBuilder::new("glue", &mut t);
//! let a = b.input("a");
//! let q = b.latch_from("q", a, false);
//! b.mark_output(q);
//! let m = b.finish()?;
//!
//! let f = Ltl::parse("F q", &mut t)?;
//! let word = bounded_lasso(&m, &t, &[], &[f.clone()], 8).expect("reachable");
//! assert!(f.holds_on(&word));
//! # Ok(())
//! # }
//! ```

pub mod bmc;
pub mod cnf;
pub mod solver;

pub use bmc::{bounded_lasso, BMC_CONFLICT_BUDGET, BMC_VAR_LIMIT, DEFAULT_BMC_DEPTH};
pub use cnf::{Cnf, SatLit, Var};
pub use solver::{SatResult, Solver, SolverStats};
