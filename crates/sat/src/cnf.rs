//! CNF formulas and a Tseitin gate builder.
//!
//! The bounded-refutation encoder ([`crate::bmc`]) lowers every circuit
//! gate and automaton constraint into clauses through the helpers here;
//! the [`Cnf`] is then handed to the [`Solver`](crate::Solver) whole.

use std::fmt;

/// A propositional variable, identified by a dense index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable with a polarity, packed as `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SatLit(u32);

impl SatLit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Self {
        SatLit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Self {
        SatLit(v.0 << 1 | 1)
    }

    /// `v` with the given polarity (`true` = positive).
    pub fn new(v: Var, positive: bool) -> Self {
        if positive {
            Self::pos(v)
        } else {
            Self::neg(v)
        }
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The opposite literal over the same variable.
    pub fn negated(self) -> Self {
        SatLit(self.0 ^ 1)
    }

    /// The packed code (`var << 1 | negated`), the watch-list index.
    pub(crate) fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "!x{}", self.var().0)
        }
    }
}

/// A CNF under construction: a variable counter, a clause list, and
/// Tseitin helpers that introduce definition variables for gates.
///
/// Clauses are normalized on entry: duplicate literals are dropped and
/// tautological clauses (`l ∨ ¬l ∨ …`) are discarded. An *empty* clause is
/// recorded as-is and makes the formula trivially unsatisfiable.
#[derive(Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<SatLit>>,
    /// Lazily created variable pinned true by a unit clause, backing
    /// [`Cnf::lit_true`] (gates over constants reduce to it).
    const_true: Option<SatLit>,
}

impl Cnf {
    /// An empty formula (vacuously satisfiable).
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Number of clauses recorded so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The recorded clauses.
    pub fn clauses(&self) -> &[Vec<SatLit>] {
        &self.clauses
    }

    /// Consumes the builder into `(num_vars, clauses)` for the solver.
    pub(crate) fn into_parts(self) -> (u32, Vec<Vec<SatLit>>) {
        (self.num_vars, self.clauses)
    }

    /// Adds a clause (a disjunction of literals). Duplicates are removed;
    /// tautologies are dropped; an empty clause is kept (unsatisfiable).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = SatLit>) {
        let mut c: Vec<SatLit> = lits.into_iter().collect();
        c.sort_unstable();
        c.dedup();
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return; // l and !l in one clause: tautology
            }
        }
        self.clauses.push(c);
    }

    /// A literal that is always true (created on first use).
    pub fn lit_true(&mut self) -> SatLit {
        match self.const_true {
            Some(l) => l,
            None => {
                let l = SatLit::pos(self.new_var());
                self.add_clause([l]);
                self.const_true = Some(l);
                l
            }
        }
    }

    /// A literal that is always false.
    pub fn lit_false(&mut self) -> SatLit {
        self.lit_true().negated()
    }

    /// Forces `a ↔ b`.
    pub fn equate(&mut self, a: SatLit, b: SatLit) {
        self.add_clause([a.negated(), b]);
        self.add_clause([a, b.negated()]);
    }

    /// Forces `cond → (a ↔ b)`.
    pub fn equate_if(&mut self, cond: SatLit, a: SatLit, b: SatLit) {
        self.add_clause([cond.negated(), a.negated(), b]);
        self.add_clause([cond.negated(), a, b.negated()]);
    }

    /// Tseitin AND: a fresh literal `g` with `g ↔ ⋀ lits`. The empty
    /// conjunction is true.
    pub fn lit_and(&mut self, lits: &[SatLit]) -> SatLit {
        match lits {
            [] => self.lit_true(),
            [l] => *l,
            _ => {
                let g = SatLit::pos(self.new_var());
                for &l in lits {
                    self.add_clause([g.negated(), l]);
                }
                let mut long: Vec<SatLit> = lits.iter().map(|l| l.negated()).collect();
                long.push(g);
                self.add_clause(long);
                g
            }
        }
    }

    /// Tseitin OR: a fresh literal `g` with `g ↔ ⋁ lits`. The empty
    /// disjunction is false.
    pub fn lit_or(&mut self, lits: &[SatLit]) -> SatLit {
        match lits {
            [] => self.lit_false(),
            [l] => *l,
            _ => {
                let g = SatLit::pos(self.new_var());
                for &l in lits {
                    self.add_clause([g, l.negated()]);
                }
                let mut long: Vec<SatLit> = lits.to_vec();
                long.push(g.negated());
                self.add_clause(long);
                g
            }
        }
    }

    /// Tseitin XOR: a fresh literal `g` with `g ↔ a ⊕ b`.
    pub fn lit_xor(&mut self, a: SatLit, b: SatLit) -> SatLit {
        let g = SatLit::pos(self.new_var());
        self.add_clause([g.negated(), a, b]);
        self.add_clause([g.negated(), a.negated(), b.negated()]);
        self.add_clause([g, a.negated(), b]);
        self.add_clause([g, a, b.negated()]);
        g
    }

    /// At most one of `lits` is true (pairwise encoding — the automaton
    /// state blocks this encodes are a handful of states wide).
    pub fn at_most_one(&mut self, lits: &[SatLit]) {
        for (i, &a) in lits.iter().enumerate() {
            for &b in &lits[i + 1..] {
                self.add_clause([a.negated(), b.negated()]);
            }
        }
    }

    /// Exactly one of `lits` is true.
    pub fn exactly_one(&mut self, lits: &[SatLit]) {
        self.add_clause(lits.iter().copied());
        self.at_most_one(lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_round_trips() {
        let v = Var(7);
        let p = SatLit::pos(v);
        let n = SatLit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_pos() && !n.is_pos());
        assert_eq!(p.negated(), n);
        assert_eq!(n.negated(), p);
        assert_eq!(SatLit::new(v, true), p);
        assert_eq!(SatLit::new(v, false), n);
    }

    #[test]
    fn tautologies_and_duplicates_normalized() {
        let mut cnf = Cnf::new();
        let a = SatLit::pos(cnf.new_var());
        let b = SatLit::pos(cnf.new_var());
        cnf.add_clause([a, a, b]);
        assert_eq!(cnf.clauses()[0].len(), 2, "duplicate dropped");
        cnf.add_clause([a, a.negated()]);
        assert_eq!(cnf.num_clauses(), 1, "tautology dropped");
    }

    #[test]
    fn const_true_is_memoized() {
        let mut cnf = Cnf::new();
        let t1 = cnf.lit_true();
        let t2 = cnf.lit_true();
        assert_eq!(t1, t2);
        assert_eq!(cnf.lit_false(), t1.negated());
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn gate_helpers_collapse_trivial_arities() {
        let mut cnf = Cnf::new();
        let a = SatLit::pos(cnf.new_var());
        assert_eq!(cnf.lit_and(&[a]), a);
        assert_eq!(cnf.lit_or(&[a]), a);
        let t = cnf.lit_true();
        assert_eq!(cnf.lit_and(&[]), t);
        assert_eq!(cnf.lit_or(&[]), t.negated());
    }
}
