//! Bounded refutation: SAT-encoded lasso search over the netlist × GBA
//! product.
//!
//! [`bounded_lasso`] asks: *is there an ultimately periodic run of the
//! model, with prefix + period fitting inside `depth` cycles, satisfying
//! every formula of the conjunction?* A `Some` answer is a genuine run —
//! extracted from the SAT model, re-settled through the netlist evaluator
//! and re-verified against every formula with the word-level semantics —
//! so the caller may treat it exactly like a counterexample from the
//! unbounded engines. A `None` answer proves nothing (the run may simply
//! need more cycles), which is why the coverage pipeline uses this as a
//! *refutation-only* tier in front of the fixpoint engines.
//!
//! # Encoding
//!
//! Positions `0 ..= k` (`k = depth`), with position `k` identified with
//! some earlier position `j` by a one-hot loop selector:
//!
//! * **netlist**: one variable per latch/input/wire per position; latches
//!   pinned to their reset value at position 0 and tied to their
//!   next-state function across steps; wires Tseitin-defined from their
//!   gate functions per position; signals the model does not constrain
//!   are pinned false, matching the explicit engine's label convention;
//! * **automata**: per conjunct, the same GPVW automaton both engines use
//!   (via [`dic_automata::translate_cached`]), encoded one-hot per
//!   position: the chosen state's literal obligations hold on the
//!   position's valuation, and consecutive states follow the transition
//!   relation;
//! * **loop**: selector `l_j` forces latch/input/automaton-state equality
//!   between positions `k` and `j`, making `j .. k-1` the period;
//! * **acceptance**: for every acceptance set of every automaton, some
//!   in-loop position visits it (generalized Büchi acceptance localized
//!   to the period).

use crate::cnf::{Cnf, SatLit};
use crate::solver::{SatResult, Solver};
use dic_automata::translate_cached;
use dic_logic::{BoolExpr, SignalId, SignalTable, Valuation};
use dic_ltl::{LassoWord, Ltl};
use dic_netlist::Module;
use std::collections::HashMap;

/// Default unroll depth of the bounded tier (`SPECMATCHER_BMC_DEPTH`
/// overrides it).
pub const DEFAULT_BMC_DEPTH: usize = 16;

/// Conflict budget per bounded query: exhausting it abandons the query
/// (falling through to the unbounded engines) instead of stalling on a
/// hard instance. Part of the query, hence deterministic.
pub const BMC_CONFLICT_BUDGET: u64 = 50_000;

/// Variable cap for the bounded tier: an encoding wider than this is
/// skipped outright (`None`) — the CNF build itself would dominate the
/// fixpoint it is supposed to short-circuit.
pub const BMC_VAR_LIMIT: usize = 400_000;

/// Searches for a lasso run of `module` (with `free` spec signals as
/// additional nondeterministic inputs) satisfying every formula in
/// `formulas`, with prefix + period within `depth` cycles.
///
/// Returns a replayable [`LassoWord`] on success; `None` means *no verdict*
/// (bounded-unsatisfiable, over budget, or too large to encode), never
/// "unsatisfiable".
///
/// # Panics
///
/// Panics if `depth == 0` (callers validate the configured depth).
pub fn bounded_lasso(
    module: &Module,
    table: &SignalTable,
    free: &[SignalId],
    formulas: &[Ltl],
    depth: usize,
) -> Option<LassoWord> {
    assert!(depth > 0, "BMC depth must be positive");
    let gbas: Vec<_> = formulas.iter().map(translate_cached).collect();
    if gbas.iter().any(|g| g.initial().is_empty()) {
        // Some conjunct is unsatisfiable on its own: no run exists at any
        // depth. Still "no verdict" here — the unbounded engines answer
        // the query with the same `None` for free.
        return None;
    }
    // `bmc.encode` injection site: the tier is refutation-only, so any
    // non-panic kind degrades to `None` ("no verdict"), which is sound by
    // construction.
    match dic_fault::hit(dic_fault::Site::BmcEncode) {
        Some(dic_fault::FaultKind::Panic) => dic_fault::injected_panic(),
        Some(_) => return None,
        None => {}
    }
    // A tripped deadline skips the bounded tier outright — the closure
    // engines behind it carry their own checkpoints and report the trip.
    if dic_fault::deadline_expired() {
        return None;
    }
    let mut span = dic_trace::span("bmc.encode");
    let mut enc = Encoder::new(module, table, free, depth);
    if enc.predicted_vars(&gbas) > BMC_VAR_LIMIT {
        return None;
    }
    enc.encode_model();
    for g in &gbas {
        enc.encode_automaton(g.as_ref());
    }
    enc.encode_loop();
    if dic_trace::enabled() {
        span.meta("vars", enc.cnf.num_vars() as u64);
        span.meta("clauses", enc.cnf.num_clauses() as u64);
        span.meta("depth", depth as u64);
    }
    drop(span);

    let Encoder {
        cnf,
        latch_vars,
        input_vars,
        selectors,
        ..
    } = enc;
    let _solve_span = dic_trace::span("bmc.solve");
    let mut solver = Solver::new(cnf);
    let SatResult::Sat(model) = solver.solve(Some(BMC_CONFLICT_BUDGET)) else {
        return None;
    };

    // Extract: latch and input bits from the model, wires re-settled
    // through the netlist evaluator (exactly the explicit engine's label
    // convention — unconstrained signals stay false).
    let state_signals = module.state_signals();
    let inputs = module.nondet_inputs(free);
    let lit_val = |l: SatLit| model[l.var().index()] == l.is_pos();
    let mut states = Vec::with_capacity(depth);
    for t in 0..depth {
        let mut v = Valuation::all_false(table.len());
        for (i, &s) in state_signals.iter().enumerate() {
            v.set(s, lit_val(latch_vars[t][i]));
        }
        for (i, &s) in inputs.iter().enumerate() {
            v.set(s, lit_val(input_vars[t][i]));
        }
        module.eval_wires(&mut v);
        states.push(v);
    }
    let loop_start = selectors.iter().position(|&l| lit_val(l))?;
    let word = LassoWord::new(states, loop_start)?;

    // Belt and braces: the word is only trusted if every formula holds on
    // it under the word-level semantics — an encoding discrepancy then
    // degrades to a missed short-circuit, never an unsound verdict.
    if formulas.iter().all(|f| f.holds_on(&word)) {
        Some(word)
    } else {
        debug_assert!(false, "BMC witness failed word-level re-verification");
        None
    }
}

/// Per-query encoder state.
struct Encoder<'a> {
    module: &'a Module,
    depth: usize,
    cnf: Cnf,
    /// `latch_vars[t][i]`: latch `i` (in `state_signals` order) at `t`.
    latch_vars: Vec<Vec<SatLit>>,
    /// `input_vars[t][i]`: nondet input `i` at `t`.
    input_vars: Vec<Vec<SatLit>>,
    /// Wire definitions per position, filled during model encoding.
    wire_vars: Vec<HashMap<SignalId, SatLit>>,
    /// Signal → latch/input index maps.
    latch_index: HashMap<SignalId, usize>,
    input_index: HashMap<SignalId, usize>,
    /// One-hot loop selectors `l_0 .. l_{depth-1}`.
    selectors: Vec<SatLit>,
    /// Prefix-or of the selectors: `inloop[t] ⇔ ⋁_{j ≤ t} l_j`.
    inloop: Vec<SatLit>,
    nondet: Vec<SignalId>,
}

impl<'a> Encoder<'a> {
    fn new(
        module: &'a Module,
        _table: &SignalTable,
        free: &[SignalId],
        depth: usize,
    ) -> Self {
        let state_signals = module.state_signals();
        let nondet = module.nondet_inputs(free);
        let latch_index = state_signals
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        let input_index = nondet.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        Encoder {
            module,
            depth,
            cnf: Cnf::new(),
            latch_vars: Vec::new(),
            input_vars: Vec::new(),
            wire_vars: vec![HashMap::new(); depth + 1],
            latch_index,
            input_index,
            selectors: Vec::new(),
            inloop: Vec::new(),
            nondet,
        }
    }

    /// Rough pre-encoding size estimate, to bail out before building an
    /// encoding the solver could never repay.
    fn predicted_vars(&self, gbas: &[std::sync::Arc<dic_automata::Gba>]) -> usize {
        let per_step = self.latch_index.len()
            + self.input_index.len()
            + self.module.wires().len() * 2
            + gbas.iter().map(|g| g.num_states()).sum::<usize>();
        (self.depth + 1) * per_step
    }

    /// The literal carrying `signal` at position `t`. Latches and inputs
    /// have dedicated variables; wires resolve to their Tseitin
    /// definition; anything else is pinned false (the explicit engine's
    /// label convention for signals the model does not constrain).
    fn signal_lit(&mut self, s: SignalId, t: usize) -> SatLit {
        if let Some(&i) = self.latch_index.get(&s) {
            return self.latch_vars[t][i];
        }
        if let Some(&i) = self.input_index.get(&s) {
            return self.input_vars[t][i];
        }
        if let Some(&l) = self.wire_vars[t].get(&s) {
            return l;
        }
        self.cnf.lit_false()
    }

    /// Tseitin of a gate function over position `t`'s signals.
    fn expr_lit(&mut self, e: &BoolExpr, t: usize) -> SatLit {
        match e {
            BoolExpr::Const(true) => self.cnf.lit_true(),
            BoolExpr::Const(false) => self.cnf.lit_false(),
            BoolExpr::Var(s) => self.signal_lit(*s, t),
            BoolExpr::Not(inner) => self.expr_lit(inner, t).negated(),
            BoolExpr::And(parts) => {
                let lits: Vec<SatLit> =
                    parts.iter().map(|p| self.expr_lit(p, t)).collect();
                self.cnf.lit_and(&lits)
            }
            BoolExpr::Or(parts) => {
                let lits: Vec<SatLit> =
                    parts.iter().map(|p| self.expr_lit(p, t)).collect();
                self.cnf.lit_or(&lits)
            }
            BoolExpr::Xor(a, b) => {
                let la = self.expr_lit(a, t);
                let lb = self.expr_lit(b, t);
                self.cnf.lit_xor(la, lb)
            }
        }
    }

    /// Unrolls the netlist: variables per position, reset at 0, wires as
    /// definitions, latches tied across steps.
    fn encode_model(&mut self) {
        let latches = self.module.latches().to_vec();
        let n_inputs = self.nondet.len();
        for _t in 0..=self.depth {
            let lv: Vec<SatLit> = latches
                .iter()
                .map(|_| SatLit::pos(self.cnf.new_var()))
                .collect();
            let iv: Vec<SatLit> = (0..n_inputs)
                .map(|_| SatLit::pos(self.cnf.new_var()))
                .collect();
            self.latch_vars.push(lv);
            self.input_vars.push(iv);
        }
        // Reset values at position 0. `state_signals` is the latch-output
        // list in latch order, so index i matches latches[i].
        for (i, l) in latches.iter().enumerate() {
            let lit = self.latch_vars[0][i];
            self.cnf
                .add_clause([if l.init() { lit } else { lit.negated() }]);
        }
        // Wires, in topological order, per position.
        let order = self.module.wire_order().to_vec();
        for t in 0..=self.depth {
            for &wi in &order {
                let wire = &self.module.wires()[wi];
                let (out, func) = (wire.output(), wire.func().clone());
                let def = self.expr_lit(&func, t);
                self.wire_vars[t].insert(out, def);
            }
        }
        // Transition: latch at t+1 equals its next function over t.
        for t in 0..self.depth {
            for (i, l) in latches.iter().enumerate() {
                let next = self.expr_lit(&l.next().clone(), t);
                let target = self.latch_vars[t + 1][i];
                self.cnf.equate(target, next);
            }
        }
    }

    /// Encodes one conjunct automaton: one-hot states per position,
    /// initial-state restriction, literal obligations, transition
    /// relation, and loop-localized generalized acceptance.
    fn encode_automaton(&mut self, gba: &dic_automata::Gba) {
        let n = gba.num_states();
        let k = self.depth;
        // One-hot state variables per position.
        let mut at: Vec<Vec<SatLit>> = Vec::with_capacity(k + 1);
        for _t in 0..=k {
            let row: Vec<SatLit> =
                (0..n).map(|_| SatLit::pos(self.cnf.new_var())).collect();
            self.cnf.exactly_one(&row);
            at.push(row);
        }
        // Initial states only at position 0.
        for (q, &here) in at[0].iter().enumerate() {
            if !gba.is_initial(q as u32) {
                self.cnf.add_clause([here.negated()]);
            }
        }
        // Literal obligations: being in q at t forces q's literals on the
        // position's valuation.
        for (t, row) in at.iter().enumerate() {
            for (q, &here) in row.iter().enumerate() {
                for &lit in gba.state(q as u32).literals() {
                    let sig = self.signal_lit(lit.signal(), t);
                    let obligation = if lit.polarity() { sig } else { sig.negated() };
                    self.cnf.add_clause([here.negated(), obligation]);
                }
            }
        }
        // Transitions: q at t allows only its successors at t+1.
        for t in 0..k {
            for q in 0..n {
                let mut clause: Vec<SatLit> = vec![at[t][q].negated()];
                clause.extend(
                    gba.successors(q as u32)
                        .iter()
                        .map(|&q2| at[t + 1][q2 as usize]),
                );
                self.cnf.add_clause(clause);
            }
        }
        // Loop closure for this automaton: selector j ties position k to
        // position j (selectors exist by the time this runs — see
        // `encode_loop`'s ordering note).
        self.ensure_selectors();
        for (j, &sel) in self.selectors.clone().iter().enumerate() {
            for (&at_end, &at_loop) in at[k].iter().zip(&at[j]) {
                self.cnf.equate_if(sel, at_end, at_loop);
            }
        }
        // Acceptance: every set visited at some in-loop position.
        for m in 0..gba.num_acceptance_sets() {
            let mut witnesses: Vec<SatLit> = Vec::new();
            for (t, row) in at.iter().enumerate().take(k) {
                let members: Vec<SatLit> = row
                    .iter()
                    .enumerate()
                    .filter(|&(q, _)| gba.state(q as u32).in_acceptance_set(m))
                    .map(|(_, &l)| l)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let visited = self.cnf.lit_or(&members);
                let inloop = self.inloop[t];
                witnesses.push(self.cnf.lit_and(&[inloop, visited]));
            }
            self.cnf.add_clause(witnesses);
        }
    }

    /// Creates the one-hot loop selectors and the prefix-or in-loop
    /// indicators on first use.
    fn ensure_selectors(&mut self) {
        if !self.selectors.is_empty() {
            return;
        }
        let k = self.depth;
        self.selectors = (0..k).map(|_| SatLit::pos(self.cnf.new_var())).collect();
        let sels = self.selectors.clone();
        self.cnf.exactly_one(&sels);
        // inloop[t] ⇔ l_0 ∨ … ∨ l_t.
        let mut prev: Option<SatLit> = None;
        for t in 0..k {
            let here = match prev {
                None => self.selectors[0],
                Some(p) => self.cnf.lit_or(&[p, self.selectors[t]]),
            };
            self.inloop.push(here);
            prev = Some(here);
        }
    }

    /// Ties the model state at position `k` back to the selected loop
    /// position: latches and inputs equal (wires follow functionally).
    fn encode_loop(&mut self) {
        self.ensure_selectors();
        let k = self.depth;
        for (j, &sel) in self.selectors.clone().iter().enumerate() {
            for i in 0..self.latch_vars[0].len() {
                self.cnf
                    .equate_if(sel, self.latch_vars[k][i], self.latch_vars[j][i]);
            }
            for i in 0..self.input_vars[0].len() {
                self.cnf
                    .equate_if(sel, self.input_vars[k][i], self.input_vars[j][i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::SignalTable;
    use dic_netlist::ModuleBuilder;

    /// `q` latches `a`; free spec signal `req` rides along.
    fn latch_module(t: &mut SignalTable) -> Module {
        let mut b = ModuleBuilder::new("glue", t);
        let a = b.input("a");
        let q = b.latch_from("q", a, false);
        b.mark_output(q);
        b.finish().expect("valid")
    }

    #[test]
    fn finds_bounded_witness_for_reachable_scenario() {
        let mut t = SignalTable::new();
        let m = latch_module(&mut t);
        // F(q): reachable in one step by driving a.
        let f = Ltl::parse("F q", &mut t).unwrap();
        let word = bounded_lasso(&m, &t, &[], std::slice::from_ref(&f), DEFAULT_BMC_DEPTH)
            .expect("q is reachable");
        assert!(f.holds_on(&word));
    }

    #[test]
    fn respects_conjunction() {
        let mut t = SignalTable::new();
        let m = latch_module(&mut t);
        let req = t.intern("req");
        let f1 = Ltl::parse("G(req -> X q)", &mut t).unwrap();
        let f2 = Ltl::parse("F req", &mut t).unwrap();
        let f3 = Ltl::parse("G !a", &mut t).unwrap();
        // req with a pinned low: q never rises, so G(req -> X q) ∧ F req
        // ∧ G !a has no run of this module.
        assert!(bounded_lasso(&m, &t, &[req], &[f1, f2, f3], 8).is_none());
    }

    #[test]
    fn bounded_none_on_unsatisfiable_conjunct() {
        let mut t = SignalTable::new();
        let m = latch_module(&mut t);
        let contradiction = Ltl::parse("G q & F !q", &mut t).unwrap();
        assert!(bounded_lasso(&m, &t, &[], &[contradiction], 8).is_none());
    }

    #[test]
    fn witness_replays_reset_and_transition_semantics() {
        let mut t = SignalTable::new();
        let m = latch_module(&mut t);
        let f = Ltl::parse("F(q & X !q)", &mut t).unwrap();
        let word =
            bounded_lasso(&m, &t, &[], std::slice::from_ref(&f), DEFAULT_BMC_DEPTH).expect("reachable");
        assert!(f.holds_on(&word));
        // Replay: every consecutive pair respects the latch function
        // q' = a, and position 0 carries the reset value q = 0.
        let a = t.lookup("a").unwrap();
        let q = t.lookup("q").unwrap();
        assert!(!word.states()[0].get(q), "reset value");
        for i in 0..word.states().len() {
            let succ = word.succ(i);
            assert_eq!(
                word.states()[succ].get(q),
                word.states()[i].get(a),
                "latch semantics broken at step {i}"
            );
        }
    }

    #[test]
    fn liveness_needs_acceptance_in_the_loop() {
        let mut t = SignalTable::new();
        let m = latch_module(&mut t);
        // G F q: q must recur forever — the loop itself must visit q.
        let f = Ltl::parse("G F q", &mut t).unwrap();
        let word = bounded_lasso(&m, &t, &[], std::slice::from_ref(&f), 6).expect("satisfiable");
        assert!(f.holds_on(&word));
        let q = t.lookup("q").unwrap();
        let loop_has_q = word.states()[word.loop_start()..]
            .iter()
            .any(|s| s.get(q));
        assert!(loop_has_q, "acceptance must fall inside the period");
    }

    #[test]
    fn zero_state_module_still_encodes() {
        // Pure combinational module: only inputs and wires.
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("comb", &mut t);
        let x = b.input("x");
        let y = b.not_gate("y", x);
        b.mark_output(y);
        let m = b.finish().unwrap();
        let f = Ltl::parse("G(x -> !y)", &mut t).unwrap();
        let word = bounded_lasso(&m, &t, &[], std::slice::from_ref(&f), 4).expect("tautology holds");
        assert!(f.holds_on(&word));
    }
}
