//! Error type for FSM extraction.

use std::error::Error;
use std::fmt;

/// Errors produced while extracting FSMs or building Kripke structures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsmError {
    /// The explicit state space would be too large to enumerate.
    ///
    /// The paper is explicit that the method targets *small* RTL blocks
    /// ("the proposed method should not be viewed as a new way to do model
    /// checking"), so the extractor refuses instead of thrashing.
    TooLarge {
        /// Number of latch bits in the module.
        state_bits: usize,
        /// Number of free input bits.
        input_bits: usize,
        /// The configured limit on `state_bits + input_bits`.
        limit: usize,
    },
    /// The cooperative wall-clock deadline (`--timeout` /
    /// `SPECMATCHER_TIMEOUT`, armed through `dic_fault`) expired at an
    /// expansion-batch checkpoint. The run degrades instead of thrashing:
    /// the caller reports what it settled before the trip.
    Deadline,
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::TooLarge {
                state_bits,
                input_bits,
                limit,
            } => write!(
                f,
                "state space too large: {state_bits} latch bits + {input_bits} input bits \
                 exceeds the explicit-enumeration limit of {limit} total bits"
            ),
            FsmError::Deadline => write!(
                f,
                "deadline exceeded during explicit-state enumeration \
                 (cooperative checkpoint between expansion batches)"
            ),
        }
    }
}

impl Error for FsmError {}
