//! FSM extraction and Kripke structures for the SpecMatcher toolkit.
//!
//! This crate turns the structural netlists of
//! [`dic_netlist`] into the two semantic objects the paper's method needs:
//!
//! * [`Fsm`] — the explicit finite state machine of a concrete module
//!   (paper Section 3: "Given a RTL model M we extract the Finite State
//!   Machine S_M modeling it"), with optional BDD-backed merging of input
//!   valuations into transition guard cubes. This feeds the `T_M`
//!   construction of Definition 4.
//! * [`Kripke`] — the runs of the composed concrete modules with every
//!   *other* signal left free (inputs re-chosen nondeterministically each
//!   cycle), which is exactly the set of "runs … consistent with the
//!   concrete modules" of Definition 1. The model checker explores it
//!   on the fly.
//!
//! # Example
//!
//! ```
//! use dic_logic::{BoolExpr, SignalTable};
//! use dic_netlist::ModuleBuilder;
//! use dic_fsm::{extract_fsm, Kripke};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Example 3 / Fig. 5: an AND gate feeding a latch.
//! let mut t = SignalTable::new();
//! let mut b = ModuleBuilder::new("simple", &mut t);
//! let a = b.input("a");
//! let bb = b.input("b");
//! b.latch("c", BoolExpr::and([BoolExpr::var(a), BoolExpr::var(bb)]), false);
//! let m = b.finish()?;
//!
//! let fsm = extract_fsm(&m, &t, true)?;
//! assert_eq!(fsm.num_states(), 2);        // c=0 and c=1
//! // Merged guards: per state, `a & b` plus the two-cube cover of !(a & b).
//! assert_eq!(fsm.num_transitions(), 6);
//!
//! let k = Kripke::from_module(&m, &t, &[])?;
//! assert_eq!(k.num_states(), 8);          // 1 latch bit x 2 input bits
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod fsm;
pub mod kripke;
pub mod minimize;

pub use error::FsmError;
pub use fsm::{extract_fsm, Fsm, FsmTransition};
pub use minimize::{quotient, Quotient};
pub use kripke::{Kripke, StateId, KRIPKE_BIT_LIMIT};
