//! Kripke structures: the runs consistent with the concrete modules.

use crate::error::FsmError;
use dic_logic::{SignalId, SignalTable, Valuation};
use dic_netlist::Module;
use std::collections::HashMap;

/// Bit budget for the Kripke state space (`latch bits + input bits`).
///
/// Tighter than the FSM limit because Kripke states are materialized with
/// full signal labels.
pub const KRIPKE_BIT_LIMIT: usize = 20;

/// Identifier of a Kripke state.
pub type StateId = u32;

/// An explicit Kripke structure over circuit signal valuations.
///
/// A state is a pair *(latch valuation, free-signal valuation)* — the
/// paper's "valuation of the signals at a given time" (Definition 1)
/// restricted to its deterministic part (wires are functions of the rest).
/// Transitions step the latches through the module logic and re-choose
/// every free signal nondeterministically, so the paths of this structure
/// are exactly the runs consistent with the concrete modules, with all
/// other spec signals unconstrained.
///
/// See the [crate-level example](crate) for usage.
#[derive(Clone, Debug)]
pub struct Kripke {
    state_vars: Vec<SignalId>,
    input_vars: Vec<SignalId>,
    /// Reachable latch valuations; index = latch index. Entry 0 is initial.
    latch_keys: Vec<u64>,
    n_input_bits: u32,
    /// `next_latch[latch_idx << n_input_bits | input_key]` = next latch idx.
    next_latch: Vec<u32>,
    /// Full signal valuation per state id.
    labels: Vec<Valuation>,
}

impl Kripke {
    /// Builds the Kripke structure of `module` with `extra_free` signals
    /// (spec signals not driven by the module) added as nondeterministic
    /// inputs. Signals in `extra_free` that the module drives are ignored;
    /// duplicates are ignored.
    ///
    /// # Errors
    ///
    /// [`FsmError::TooLarge`] if the state space exceeds
    /// [`KRIPKE_BIT_LIMIT`] bits.
    pub fn from_module(
        module: &Module,
        table: &SignalTable,
        extra_free: &[SignalId],
    ) -> Result<Self, FsmError> {
        let state_vars: Vec<SignalId> = module.state_signals();
        let input_vars: Vec<SignalId> = module.nondet_inputs(extra_free);
        if state_vars.len() + input_vars.len() > KRIPKE_BIT_LIMIT {
            return Err(FsmError::TooLarge {
                state_bits: state_vars.len(),
                input_bits: input_vars.len(),
                limit: KRIPKE_BIT_LIMIT,
            });
        }
        let n_input_bits = input_vars.len() as u32;
        let mut build_span = dic_trace::span("fsm.kripke_build");

        // Reachable latch keys by BFS.
        let mut reset = Valuation::all_false(table.len());
        module.apply_reset(&mut reset);
        let init_key = reset.project_key(&state_vars);
        let mut latch_keys = vec![init_key];
        let mut index: HashMap<u64, u32> = HashMap::from([(init_key, 0)]);
        let mut next_latch: Vec<u32> = Vec::new();
        let mut scratch = Valuation::all_false(table.len());
        let mut frontier = 0usize;
        while frontier < latch_keys.len() {
            // Cooperative deadline checkpoint per expansion batch (one
            // latch state × all input keys); the structures are consistent
            // between batches, so the refusal is clean.
            if dic_fault::deadline_expired() {
                return Err(FsmError::Deadline);
            }
            let from_key = latch_keys[frontier];
            for input_key in 0..(1u64 << n_input_bits) {
                scratch.assign_key(&state_vars, from_key);
                scratch.assign_key(&input_vars, input_key);
                module.eval_wires(&mut scratch);
                let next = module.next_latch_values(&scratch);
                let mut to_key = 0u64;
                for (bit, v) in next.iter().enumerate() {
                    if *v {
                        to_key |= 1 << bit;
                    }
                }
                let to = *index.entry(to_key).or_insert_with(|| {
                    latch_keys.push(to_key);
                    (latch_keys.len() - 1) as u32
                });
                next_latch.push(to);
            }
            frontier += 1;
        }

        // Labels for every (latch, input) pair.
        let mut labels = Vec::with_capacity(latch_keys.len() << n_input_bits);
        for &lk in &latch_keys {
            for input_key in 0..(1u64 << n_input_bits) {
                let mut v = Valuation::all_false(table.len());
                v.assign_key(&state_vars, lk);
                v.assign_key(&input_vars, input_key);
                module.eval_wires(&mut v);
                labels.push(v);
            }
        }

        if dic_trace::enabled() {
            dic_trace::count(dic_trace::Counter::ExplicitStatesExpanded, labels.len() as u64);
            build_span.meta("states", labels.len() as u64);
            build_span.meta("latch_states", latch_keys.len() as u64);
        }
        Ok(Kripke {
            state_vars,
            input_vars,
            latch_keys,
            n_input_bits,
            next_latch,
            labels,
        })
    }

    /// A stateless Kripke structure over `signals` only: every valuation is
    /// a state, every state reaches every state. Its runs are *all* infinite
    /// words, so model checking against it decides plain LTL validity.
    ///
    /// # Errors
    ///
    /// [`FsmError::TooLarge`] if `signals` exceeds [`KRIPKE_BIT_LIMIT`].
    pub fn universal(table: &SignalTable, signals: &[SignalId]) -> Result<Self, FsmError> {
        if signals.len() > KRIPKE_BIT_LIMIT {
            return Err(FsmError::TooLarge {
                state_bits: 0,
                input_bits: signals.len(),
                limit: KRIPKE_BIT_LIMIT,
            });
        }
        let n = signals.len() as u32;
        let mut labels = Vec::with_capacity(1usize << n);
        for key in 0..(1u64 << n) {
            let mut v = Valuation::all_false(table.len());
            v.assign_key(signals, key);
            labels.push(v);
        }
        Ok(Kripke {
            state_vars: Vec::new(),
            input_vars: signals.to_vec(),
            latch_keys: vec![0],
            n_input_bits: n,
            next_latch: vec![0; 1usize << n],
            labels,
        })
    }

    /// The latch signals.
    pub fn state_vars(&self) -> &[SignalId] {
        &self.state_vars
    }

    /// The nondeterministic input signals (module inputs + free signals).
    pub fn input_vars(&self) -> &[SignalId] {
        &self.input_vars
    }

    /// Total number of states.
    pub fn num_states(&self) -> usize {
        self.latch_keys.len() << self.n_input_bits
    }

    /// Number of distinct reachable latch valuations.
    pub fn num_latch_states(&self) -> usize {
        self.latch_keys.len()
    }

    /// The initial states: reset latches, any input valuation.
    pub fn initial_states(&self) -> impl Iterator<Item = StateId> + '_ {
        0..(1u32 << self.n_input_bits)
    }

    /// The successors of `state`: stepped latches, any next input valuation.
    pub fn successors(&self, state: StateId) -> impl Iterator<Item = StateId> + '_ {
        let next_latch = self.next_latch[state as usize];
        let base = next_latch << self.n_input_bits;
        (0..(1u32 << self.n_input_bits)).map(move |i| base | i)
    }

    /// The full signal valuation labelling `state`.
    pub fn label(&self, state: StateId) -> &Valuation {
        &self.labels[state as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::BoolExpr;
    use dic_netlist::ModuleBuilder;

    fn simple(t: &mut SignalTable) -> Module {
        let mut b = ModuleBuilder::new("simple", t);
        let a = b.input("a");
        let bb = b.input("b");
        b.latch("c", BoolExpr::and([BoolExpr::var(a), BoolExpr::var(bb)]), false);
        b.finish().expect("valid")
    }

    #[test]
    fn state_count_and_labels() {
        let mut t = SignalTable::new();
        let m = simple(&mut t);
        let k = Kripke::from_module(&m, &t, &[]).expect("fits");
        assert_eq!(k.num_states(), 8); // 2 latch x 4 inputs
        assert_eq!(k.num_latch_states(), 2);
        let a = t.lookup("a").unwrap();
        let c = t.lookup("c").unwrap();
        // Initial states have c = 0.
        for s in k.initial_states() {
            assert!(!k.label(s).get(c));
        }
        // Some initial state has a = 1.
        assert!(k.initial_states().any(|s| k.label(s).get(a)));
    }

    #[test]
    fn transitions_follow_latch_logic() {
        let mut t = SignalTable::new();
        let m = simple(&mut t);
        let k = Kripke::from_module(&m, &t, &[]).expect("fits");
        let a = t.lookup("a").unwrap();
        let b = t.lookup("b").unwrap();
        let c = t.lookup("c").unwrap();
        // From a state with a & b, every successor has c = 1.
        let s = k
            .initial_states()
            .find(|&s| k.label(s).get(a) && k.label(s).get(b))
            .expect("exists");
        for succ in k.successors(s) {
            assert!(k.label(succ).get(c));
        }
        // From a state with !a, every successor has c = 0.
        let s = k
            .initial_states()
            .find(|&s| !k.label(s).get(a))
            .expect("exists");
        for succ in k.successors(s) {
            assert!(!k.label(succ).get(c));
        }
    }

    #[test]
    fn extra_free_signals_are_unconstrained() {
        let mut t = SignalTable::new();
        let m = simple(&mut t);
        let r = t.intern("r_free");
        let k = Kripke::from_module(&m, &t, &[r]).expect("fits");
        assert_eq!(k.num_states(), 16);
        // Both r values occur among initial states.
        assert!(k.initial_states().any(|s| k.label(s).get(r)));
        assert!(k.initial_states().any(|s| !k.label(s).get(r)));
        // And both occur among successors of any state.
        let s0 = k.initial_states().next().unwrap();
        assert!(k.successors(s0).any(|s| k.label(s).get(r)));
        assert!(k.successors(s0).any(|s| !k.label(s).get(r)));
    }

    #[test]
    fn driven_signals_filtered_from_free() {
        let mut t = SignalTable::new();
        let m = simple(&mut t);
        let c = t.lookup("c").unwrap();
        let k = Kripke::from_module(&m, &t, &[c]).expect("fits");
        assert_eq!(k.input_vars().len(), 2, "c is driven, stays constrained");
    }

    #[test]
    fn universal_structure_is_complete() {
        let mut t = SignalTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        let k = Kripke::universal(&t, &[p, q]).expect("fits");
        assert_eq!(k.num_states(), 4);
        // Fully connected: every state reaches all four.
        for s in 0..4u32 {
            let succs: Vec<_> = k.successors(s).collect();
            assert_eq!(succs.len(), 4);
        }
        assert_eq!(k.initial_states().count(), 4);
    }

    #[test]
    fn too_large_rejected() {
        let mut t = SignalTable::new();
        let sigs: Vec<_> = (0..25).map(|i| t.intern(&format!("s{i}"))).collect();
        assert!(matches!(
            Kripke::universal(&t, &sigs),
            Err(FsmError::TooLarge { .. })
        ));
    }

    #[test]
    fn wires_in_labels_are_settled() {
        // Module with a wire: w = a | c.
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("m", &mut t);
        let a = b.input("a");
        let c = b.table().intern("c");
        b.latch("c", BoolExpr::var(a), false);
        let w = b.or_gate("w", [a, c], []);
        let m = b.finish().expect("valid");
        let k = Kripke::from_module(&m, &t, &[]).expect("fits");
        for s in 0..k.num_states() as u32 {
            let l = k.label(s);
            assert_eq!(l.get(w), l.get(a) || l.get(c));
        }
    }
}
