//! FSM minimization by partition refinement (bisimulation quotient).
//!
//! The paper's Definition 4 presents `T_M` "after minimization". Two
//! minimizations apply to an extracted [`Fsm`]:
//!
//! * **guard merging** — input valuations between the same state pair are
//!   collapsed into irredundant cubes (done during
//!   [`extract_fsm`](crate::extract_fsm) with `merge_inputs`), which is what
//!   turns the four minterm edges of the paper's Example 3 into the guards
//!   `a & b` / `!(a & b)`;
//! * **state minimization** — this module: the coarsest partition of states
//!   such that equivalent states agree on the *observed* signals and, for
//!   every input, step into equivalent states. When every latch is
//!   observable the quotient is the identity (states are distinct latch
//!   valuations); the quotient becomes useful when the specification only
//!   mentions a subset of the signals — exactly the situation of the
//!   paper's step 2(b), where signals outside `AP_A` are abstracted.
//!
//! The construction is Moore's algorithm: iterated signature refinement to
//! a fixpoint, `O(rounds × states × inputs)`.

use crate::fsm::{Fsm, FsmTransition};
use dic_logic::{BddManager, Cube, Lit, SignalId, SignalTable};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The bisimulation quotient of an [`Fsm`] with respect to an observation
/// alphabet; produced by [`quotient`].
#[derive(Clone, Debug)]
pub struct Quotient {
    /// Class index of every original state.
    class_of: Vec<usize>,
    /// One representative original state per class.
    representatives: Vec<usize>,
    /// Class of the initial state.
    initial: usize,
    /// Quotient transitions with merged input guards.
    transitions: Vec<FsmTransition>,
    /// The observed state signals (intersection of the requested alphabet
    /// with the FSM's latch signals).
    observed: Vec<SignalId>,
}

impl Quotient {
    /// Number of equivalence classes (quotient states).
    pub fn num_states(&self) -> usize {
        self.representatives.len()
    }

    /// Number of quotient transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The class containing the FSM's initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The class of an original state.
    pub fn class_of(&self, state: usize) -> usize {
        self.class_of[state]
    }

    /// A representative original state of `class`.
    pub fn representative(&self, class: usize) -> usize {
        self.representatives[class]
    }

    /// Quotient transitions (state indices are class indices).
    pub fn transitions(&self) -> &[FsmTransition] {
        &self.transitions
    }

    /// Whether minimization merged nothing (the quotient is the identity).
    pub fn is_identity(&self) -> bool {
        self.class_of.len() == self.representatives.len()
    }

    /// The observation cube of `class` over the observed signals, via its
    /// representative.
    pub fn observation(&self, class: usize, fsm: &Fsm) -> Cube {
        let rep = self.representatives[class];
        let key = fsm.state_key(rep);
        Cube::from_lits(self.observed.iter().map(|&s| {
            let bit = fsm
                .state_vars()
                .iter()
                .position(|&v| v == s)
                .expect("observed signals are state vars");
            Lit::new(s, key >> bit & 1 == 1)
        }))
        .expect("one literal per observed signal")
    }

    /// Renders the quotient in Graphviz DOT format.
    pub fn to_dot(&self, fsm: &Fsm, table: &SignalTable) -> String {
        let mut out = String::from("digraph quotient {\n  rankdir=LR;\n");
        for class in 0..self.num_states() {
            let label = self.observation(class, fsm).display(table).to_string();
            let members = self.class_of.iter().filter(|&&c| c == class).count();
            let shape = if class == self.initial {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(
                out,
                "  c{class} [label=\"{label}\\n({members} states)\", shape={shape}];"
            );
        }
        for t in &self.transitions {
            let guard = t.guard.display(table).to_string();
            let _ = writeln!(out, "  c{} -> c{} [label=\"{}\"];", t.from, t.to, guard);
        }
        out.push_str("}\n");
        out
    }
}

/// Computes the coarsest bisimulation quotient of `fsm` in which states are
/// distinguished only by the signals in `observe` (and by where they can
/// step, input by input).
///
/// Signals in `observe` that are not latches of the FSM are ignored: inputs
/// are free and outputs are functions of latches and inputs, so latch
/// observability is what determines state distinguishability.
pub fn quotient(fsm: &Fsm, observe: &[SignalId]) -> Quotient {
    let observed: Vec<SignalId> = fsm
        .state_vars()
        .iter()
        .copied()
        .filter(|s| observe.contains(s))
        .collect();
    let obs_mask: u64 = fsm
        .state_vars()
        .iter()
        .enumerate()
        .filter(|(_, s)| observed.contains(s))
        .map(|(bit, _)| 1u64 << bit)
        .sum();

    let n = fsm.num_states();
    let n_inputs = fsm.input_vars().len();
    let n_keys = 1usize << n_inputs;

    // Dense successor table: state × input minterm → state.
    let mut succ = vec![usize::MAX; n * n_keys];
    for t in fsm.transitions() {
        for key in t.guard.matching_keys(fsm.input_vars()) {
            succ[t.from * n_keys + key as usize] = t.to;
        }
    }
    debug_assert!(
        succ.iter().all(|&s| s != usize::MAX),
        "extracted FSMs are input-complete"
    );

    // Initial partition: observation projection of the state key.
    let mut class_of: Vec<usize> = {
        let mut ids: HashMap<u64, usize> = HashMap::new();
        (0..n)
            .map(|s| {
                let obs = fsm.state_key(s) & obs_mask;
                let next = ids.len();
                *ids.entry(obs).or_insert(next)
            })
            .collect()
    };

    // Moore refinement to fixpoint. Class ids are canonical (assigned by
    // first occurrence in state order), and refinement only ever splits
    // classes, so the partition is stable exactly when the id vector
    // repeats.
    loop {
        let mut ids: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut next_class = vec![0usize; n];
        for s in 0..n {
            let sig: Vec<usize> = (0..n_keys)
                .map(|k| class_of[succ[s * n_keys + k]])
                .collect();
            let fresh = ids.len();
            next_class[s] = *ids.entry((class_of[s], sig)).or_insert(fresh);
        }
        if next_class == class_of {
            break;
        }
        class_of = next_class;
    }

    finishing(fsm, class_of, observed, n_keys, &succ)
}

fn finishing(
    fsm: &Fsm,
    class_of: Vec<usize>,
    observed: Vec<SignalId>,
    n_keys: usize,
    succ: &[usize],
) -> Quotient {
    let n_classes = class_of.iter().copied().max().map_or(0, |m| m + 1);
    let mut representatives = vec![usize::MAX; n_classes];
    for (s, &c) in class_of.iter().enumerate() {
        if representatives[c] == usize::MAX {
            representatives[c] = s;
        }
    }

    // Quotient transitions from the representatives, guards re-merged.
    let mut raw: Vec<(usize, u64, usize)> = Vec::new();
    for (c, &rep) in representatives.iter().enumerate() {
        for key in 0..n_keys {
            let to = class_of[succ[rep * n_keys + key]];
            raw.push((c, key as u64, to));
        }
    }
    let transitions = merge_raw(&raw, fsm.input_vars());

    Quotient {
        initial: class_of[fsm.initial()],
        class_of,
        representatives,
        transitions,
        observed,
    }
}

/// Merges per-(from,to) input minterms into irredundant cube covers (same
/// construction as guard merging during extraction).
fn merge_raw(raw: &[(usize, u64, usize)], input_vars: &[SignalId]) -> Vec<FsmTransition> {
    let mut grouped: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
    for &(from, key, to) in raw {
        grouped.entry((from, to)).or_default().push(key);
    }
    let mut pairs: Vec<((usize, usize), Vec<u64>)> = grouped.into_iter().collect();
    pairs.sort();
    let mut man = BddManager::new();
    let mut out = Vec::new();
    for ((from, to), keys) in pairs {
        let mut f = dic_logic::Bdd::FALSE;
        for key in keys {
            let c = Cube::from_lits(
                input_vars
                    .iter()
                    .enumerate()
                    .map(|(bit, &s)| Lit::new(s, key >> bit & 1 == 1)),
            )
            .expect("one literal per signal");
            let cb = man.from_cube(&c);
            f = man.or(f, cb);
        }
        for guard in man.cubes(f) {
            out.push(FsmTransition { from, to, guard });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::extract_fsm;
    use dic_logic::BoolExpr;
    use dic_netlist::ModuleBuilder;

    /// Two latches: q (meaningful) and shadow (tracks the input but never
    /// influences q). Observing only q must merge the shadow dimension.
    fn shadowed(t: &mut SignalTable) -> dic_netlist::Module {
        let mut b = ModuleBuilder::new("shadowed", t);
        let i = b.input("i");
        let q = b.table().intern("q");
        b.latch("q", BoolExpr::or([BoolExpr::var(q), BoolExpr::var(i)]), false);
        b.latch("shadow", BoolExpr::var(i), false);
        b.mark_output(q);
        b.finish().expect("valid")
    }

    #[test]
    fn shadow_latch_is_merged_away() {
        let mut t = SignalTable::new();
        let m = shadowed(&mut t);
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        // Reachable: (q,shadow) ∈ {00, 11, 10} — q=0 with shadow=1 cannot
        // occur (shadow=1 means i was high, which also set q).
        assert_eq!(fsm.num_states(), 3);
        let q = t.lookup("q").unwrap();
        let quot = quotient(&fsm, &[q]);
        assert_eq!(quot.num_states(), 2, "shadow dimension collapses");
        assert!(!quot.is_identity());
        // Initial state: q=0.
        let obs = quot.observation(quot.initial(), &fsm);
        assert_eq!(obs.polarity_of(q), Some(false));
    }

    #[test]
    fn full_observation_is_identity() {
        let mut t = SignalTable::new();
        let m = shadowed(&mut t);
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        let q = t.lookup("q").unwrap();
        let shadow = t.lookup("shadow").unwrap();
        let quot = quotient(&fsm, &[q, shadow]);
        assert!(quot.is_identity());
        assert_eq!(quot.num_states(), fsm.num_states());
    }

    #[test]
    fn quotient_respects_reachability_structure() {
        // 2-bit counter observed on b1 only: b0 is not shadow (it feeds
        // b1), so states stay distinguished by their future behaviour.
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("cnt", &mut t);
        let b0 = b.table().intern("b0");
        let b1 = b.table().intern("b1");
        b.latch("b0", BoolExpr::var(b0).not(), false);
        b.latch("b1", BoolExpr::xor(BoolExpr::var(b1), BoolExpr::var(b0)), false);
        let m = b.finish().expect("valid");
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        let quot = quotient(&fsm, &[b1]);
        // (b1=0,b0=0) and (b1=0,b0=1) differ in when b1 next rises.
        assert_eq!(quot.num_states(), 4);
    }

    #[test]
    fn observing_nothing_merges_everything_with_same_future() {
        // With no observed signals every state of the OR-latch module is
        // equivalent (all futures produce the same — empty — observations).
        let mut t = SignalTable::new();
        let m = shadowed(&mut t);
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        let quot = quotient(&fsm, &[]);
        assert_eq!(quot.num_states(), 1);
        assert_eq!(quot.initial(), 0);
        // The single class has input-complete transitions.
        assert!(!quot.transitions().is_empty());
    }

    #[test]
    fn dot_export_mentions_classes() {
        let mut t = SignalTable::new();
        let m = shadowed(&mut t);
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        let q = t.lookup("q").unwrap();
        let quot = quotient(&fsm, &[q]);
        let dot = quot.to_dot(&fsm, &t);
        assert!(dot.contains("digraph quotient"));
        assert!(dot.contains("states)"));
        assert!(dot.contains("doublecircle"));
    }
}
