//! Explicit FSM extraction from a netlist module.

use crate::error::FsmError;
use dic_logic::{BddManager, Cube, Lit, SignalId, SignalTable, Valuation};
use dic_netlist::Module;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Bit budget for explicit enumeration (`state_bits + input_bits`).
pub const EXPLICIT_BIT_LIMIT: usize = 24;

/// One FSM transition `(s, guard, s')`: taken from state `s` under any input
/// valuation satisfying `guard` (a cube over the module's input signals).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FsmTransition {
    /// Source state index.
    pub from: usize,
    /// Destination state index.
    pub to: usize,
    /// Input guard cube (`true` cube = unconditional).
    pub guard: Cube,
}

/// The explicit finite state machine of a concrete module.
///
/// States are reachable latch valuations; transitions are guarded by input
/// cubes. This is the `S_M = (I, O, S, S0, L, T)` of the paper's Section 3,
/// with `L(s)` exposed as [`Fsm::state_cube`] and `T` as
/// [`Fsm::transitions`].
#[derive(Clone, Debug)]
pub struct Fsm {
    state_vars: Vec<SignalId>,
    input_vars: Vec<SignalId>,
    /// Latch valuations (packed keys over `state_vars`), index = state id.
    states: Vec<u64>,
    initial: usize,
    transitions: Vec<FsmTransition>,
}

impl Fsm {
    /// The latch signals, in key bit order.
    pub fn state_vars(&self) -> &[SignalId] {
        &self.state_vars
    }

    /// The module input signals, in key bit order.
    pub fn input_vars(&self) -> &[SignalId] {
        &self.input_vars
    }

    /// Number of reachable states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions (after any guard merging).
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Index of the initial (reset) state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The packed latch valuation of state `id`.
    pub fn state_key(&self, id: usize) -> u64 {
        self.states[id]
    }

    /// All transitions.
    pub fn transitions(&self) -> &[FsmTransition] {
        &self.transitions
    }

    /// The paper's `L(s)`: the cube over the state variables characterizing
    /// state `id`.
    pub fn state_cube(&self, id: usize) -> Cube {
        let key = self.states[id];
        Cube::from_lits(
            self.state_vars
                .iter()
                .enumerate()
                .map(|(bit, &s)| Lit::new(s, key >> bit & 1 == 1)),
        )
        .expect("one literal per distinct signal")
    }

    /// Renders the FSM in Graphviz DOT format.
    pub fn to_dot(&self, table: &SignalTable) -> String {
        let mut out = String::from("digraph fsm {\n  rankdir=LR;\n");
        for (i, _key) in self.states.iter().enumerate() {
            let label = self.state_cube(i).display(table).to_string();
            let shape = if i == self.initial {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  s{i} [label=\"{label}\", shape={shape}];");
        }
        for t in &self.transitions {
            let guard = t.guard.display(table).to_string();
            let _ = writeln!(out, "  s{} -> s{} [label=\"{}\"];", t.from, t.to, guard);
        }
        out.push_str("}\n");
        out
    }
}

/// Extracts the explicit FSM of `module`.
///
/// With `merge_inputs` set, input valuations leading from the same source to
/// the same destination are merged into irredundant guard cubes via the BDD
/// engine (the form used in the paper's Example 3, where the four minterm
/// transitions collapse to guards `a & b` and `!(a & b)`); otherwise each
/// transition carries a full input minterm.
///
/// # Errors
///
/// [`FsmError::TooLarge`] if `latches + inputs` exceeds
/// [`EXPLICIT_BIT_LIMIT`] bits.
///
/// See the [crate-level example](crate) for usage.
pub fn extract_fsm(
    module: &Module,
    table: &SignalTable,
    merge_inputs: bool,
) -> Result<Fsm, FsmError> {
    let state_vars: Vec<SignalId> = module.state_signals();
    let input_vars: Vec<SignalId> = module.inputs().to_vec();
    if state_vars.len() + input_vars.len() > EXPLICIT_BIT_LIMIT {
        return Err(FsmError::TooLarge {
            state_bits: state_vars.len(),
            input_bits: input_vars.len(),
            limit: EXPLICIT_BIT_LIMIT,
        });
    }

    // Reset state key.
    let mut reset = Valuation::all_false(table.len());
    module.apply_reset(&mut reset);
    let init_key = reset.project_key(&state_vars);

    let mut states = vec![init_key];
    let mut index: HashMap<u64, usize> = HashMap::from([(init_key, 0)]);
    // (from, to) -> input keys (for merging); or direct transition list.
    let mut raw: Vec<(usize, u64, usize)> = Vec::new();
    let mut work = vec![0usize];
    let n_inputs = input_vars.len();
    let mut scratch = Valuation::all_false(table.len());

    while let Some(from) = work.pop() {
        let from_key = states[from];
        for input_key in 0..(1u64 << n_inputs) {
            scratch.assign_key(&state_vars, from_key);
            scratch.assign_key(&input_vars, input_key);
            module.eval_wires(&mut scratch);
            let next = module.next_latch_values(&scratch);
            let mut to_key = 0u64;
            for (bit, v) in next.iter().enumerate() {
                if *v {
                    to_key |= 1 << bit;
                }
            }
            let to = *index.entry(to_key).or_insert_with(|| {
                states.push(to_key);
                work.push(states.len() - 1);
                states.len() - 1
            });
            raw.push((from, input_key, to));
        }
    }

    let transitions = if merge_inputs {
        merge_guards(&raw, &input_vars)
    } else {
        raw.iter()
            .map(|&(from, input_key, to)| FsmTransition {
                from,
                to,
                guard: minterm(&input_vars, input_key),
            })
            .collect()
    };

    Ok(Fsm {
        state_vars,
        input_vars,
        states,
        initial: 0,
        transitions,
    })
}

/// Builds the full input minterm cube for a packed key.
fn minterm(input_vars: &[SignalId], key: u64) -> Cube {
    Cube::from_lits(
        input_vars
            .iter()
            .enumerate()
            .map(|(bit, &s)| Lit::new(s, key >> bit & 1 == 1)),
    )
    .expect("one literal per signal")
}

/// Merges per-(from,to) input sets into irredundant cube covers.
fn merge_guards(raw: &[(usize, u64, usize)], input_vars: &[SignalId]) -> Vec<FsmTransition> {
    let mut grouped: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
    for &(from, input_key, to) in raw {
        grouped.entry((from, to)).or_default().push(input_key);
    }
    let mut pairs: Vec<((usize, usize), Vec<u64>)> = grouped.into_iter().collect();
    pairs.sort();
    let mut man = BddManager::new();
    let mut out = Vec::new();
    for ((from, to), keys) in pairs {
        let mut f = dic_logic::Bdd::FALSE;
        for key in keys {
            let c = minterm(input_vars, key);
            let cb = man.from_cube(&c);
            f = man.or(f, cb);
        }
        for guard in man.cubes(f) {
            out.push(FsmTransition { from, to, guard });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dic_logic::BoolExpr;
    use dic_netlist::ModuleBuilder;

    /// The paper's Example 3 / Fig. 5 model: latch c with next = a & b.
    fn simple_model(t: &mut SignalTable) -> Module {
        let mut b = ModuleBuilder::new("simple", t);
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.latch("c", BoolExpr::and([BoolExpr::var(a), BoolExpr::var(bb)]), false);
        b.mark_output(c);
        b.finish().expect("valid")
    }

    #[test]
    fn example3_fsm_shape() {
        let mut t = SignalTable::new();
        let m = simple_model(&mut t);
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        // Two states (c=0, c=1) as in Fig. 5(b).
        assert_eq!(fsm.num_states(), 2);
        assert_eq!(fsm.initial(), 0);
        assert_eq!(fsm.state_key(0), 0);
        // Four merged transitions: from each state, (a&b) -> c=1 and
        // !(a&b) (two cubes: !a, !b or similar cover) -> c=0.
        let to_one: Vec<_> = fsm
            .transitions()
            .iter()
            .filter(|tr| fsm.state_key(tr.to) == 1)
            .collect();
        assert_eq!(to_one.len(), 2); // one a&b guard from each state
        for tr in to_one {
            assert_eq!(tr.guard.len(), 2, "guard must be the a&b cube");
        }
    }

    #[test]
    fn unmerged_transitions_are_minterms() {
        let mut t = SignalTable::new();
        let m = simple_model(&mut t);
        let fsm = extract_fsm(&m, &t, false).expect("fits");
        // 2 states x 4 input minterms.
        assert_eq!(fsm.num_transitions(), 8);
        for tr in fsm.transitions() {
            assert_eq!(tr.guard.len(), 2, "full minterms over a,b");
        }
    }

    #[test]
    fn state_cube_characterizes_state() {
        let mut t = SignalTable::new();
        let m = simple_model(&mut t);
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        let c = t.lookup("c").unwrap();
        assert_eq!(fsm.state_cube(0).polarity_of(c), Some(false));
        let one = (0..fsm.num_states())
            .find(|&i| fsm.state_key(i) == 1)
            .expect("state c=1 reachable");
        assert_eq!(fsm.state_cube(one).polarity_of(c), Some(true));
    }

    #[test]
    fn unreachable_states_not_enumerated() {
        // A latch that can never become 1: next = q & !q == false.
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("stuck", &mut t);
        b.latch("q", BoolExpr::ff(), false);
        let m = b.finish().expect("valid");
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        assert_eq!(fsm.num_states(), 1);
        assert_eq!(fsm.num_transitions(), 1); // true-guard self loop
        assert!(fsm.transitions()[0].guard.is_empty());
    }

    #[test]
    fn counter_has_cyclic_structure() {
        // 2-bit counter: b0' = !b0; b1' = b1 ^ b0.
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("cnt", &mut t);
        let b0 = b.table().intern("b0");
        let b1 = b.table().intern("b1");
        b.latch("b0", BoolExpr::var(b0).not(), false);
        b.latch("b1", BoolExpr::xor(BoolExpr::var(b1), BoolExpr::var(b0)), false);
        let m = b.finish().expect("valid");
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        assert_eq!(fsm.num_states(), 4);
        assert_eq!(fsm.num_transitions(), 4); // deterministic, no inputs
        // Each state has exactly one successor, forming one cycle of length 4.
        let mut next = [usize::MAX; 4];
        for tr in fsm.transitions() {
            assert!(tr.guard.is_empty());
            next[tr.from] = tr.to;
        }
        let mut seen = [false; 4];
        let mut cur = fsm.initial();
        for _ in 0..4 {
            assert!(!seen[cur]);
            seen[cur] = true;
            cur = next[cur];
        }
        assert_eq!(cur, fsm.initial());
    }

    #[test]
    fn too_large_rejected() {
        let mut t = SignalTable::new();
        let mut b = ModuleBuilder::new("wide", &mut t);
        let mut first = None;
        for i in 0..30 {
            let id = b.input(&format!("i{i}"));
            first.get_or_insert(id);
        }
        b.latch("q", BoolExpr::var(first.expect("30 inputs")), false);
        let m = b.finish().expect("valid");
        assert!(matches!(
            extract_fsm(&m, &t, true),
            Err(FsmError::TooLarge { .. })
        ));
    }

    #[test]
    fn dot_export_mentions_states() {
        let mut t = SignalTable::new();
        let m = simple_model(&mut t);
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        let dot = fsm.to_dot(&t);
        assert!(dot.contains("digraph fsm"));
        assert!(dot.contains("!c"));
        assert!(dot.contains("doublecircle"));
    }
}
