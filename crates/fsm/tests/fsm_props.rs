//! Property tests: the Kripke structure agrees with cycle-accurate
//! simulation on random modules and random stimulus, and FSM extraction is
//! faithful to the latch logic.

use dic_fsm::{extract_fsm, Kripke};
use dic_logic::{BoolExpr, SignalId, SignalTable, Valuation};
use dic_netlist::{Module, ModuleBuilder, Simulator};
use proptest::prelude::*;

/// Deterministic xorshift for structure generation inside strategies.
fn xs(mut s: u64) -> impl FnMut() -> u64 {
    move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A random expression over the given signals (depth-bounded).
fn rand_expr(rng: &mut impl FnMut() -> u64, sigs: &[SignalId], depth: usize) -> BoolExpr {
    if depth == 0 || rng().is_multiple_of(4) {
        let v = BoolExpr::var(sigs[(rng() % sigs.len() as u64) as usize]);
        return if rng().is_multiple_of(2) { v } else { v.not() };
    }
    match rng() % 3 {
        0 => BoolExpr::and([
            rand_expr(rng, sigs, depth - 1),
            rand_expr(rng, sigs, depth - 1),
        ]),
        1 => BoolExpr::or([
            rand_expr(rng, sigs, depth - 1),
            rand_expr(rng, sigs, depth - 1),
        ]),
        _ => BoolExpr::xor(
            rand_expr(rng, sigs, depth - 1),
            rand_expr(rng, sigs, depth - 1),
        ),
    }
}

/// Builds a random module: `n_in` inputs, `n_latch` latches, a couple of
/// wires reading anything, latches reading inputs and latches.
fn rand_module(seed: u64, n_in: usize, n_latch: usize) -> (SignalTable, Module) {
    let mut rng = xs(seed | 1);
    let mut t = SignalTable::new();
    let mut b = ModuleBuilder::new("rnd", &mut t);
    let mut ins = Vec::new();
    for i in 0..n_in {
        ins.push(b.input(&format!("in{i}")));
    }
    let mut latches = Vec::new();
    for i in 0..n_latch {
        latches.push(b.table().intern(&format!("q{i}")));
    }
    let state_deps: Vec<SignalId> = ins.iter().chain(latches.iter()).copied().collect();
    for (i, &q) in latches.iter().enumerate() {
        let next = rand_expr(&mut rng, &state_deps, 2);
        let init = rng().is_multiple_of(2);
        let name = format!("q{i}");
        let _ = q;
        b.latch(&name, next, init);
    }
    // Wires depend on inputs and latches (no wire-wire deps → loop-free).
    for i in 0..2 {
        let f = rand_expr(&mut rng, &state_deps, 2);
        b.wire(&format!("w{i}"), f);
    }
    let m = b.finish().expect("generated module is valid");
    (t, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Walking the Kripke structure along a concrete input sequence
    /// reproduces exactly the simulator's settled valuations.
    #[test]
    fn kripke_paths_match_simulation(
        seed in 1u64..10_000,
        stim_seed in 1u64..10_000,
        n_in in 1usize..3,
        n_latch in 1usize..4,
    ) {
        let (t, m) = rand_module(seed, n_in, n_latch);
        let k = Kripke::from_module(&m, &t, &[]).expect("small module fits");
        let mut sim = Simulator::new(&m, &t).expect("sim");
        let mut rng = xs(stim_seed | 1);
        let inputs: Vec<SignalId> = m.inputs().to_vec();

        // Choose the first input vector, find the matching initial state.
        let key0 = rng() & ((1 << inputs.len()) - 1);
        let settled0 = sim.settle(&assign(&inputs, key0)).clone();
        let mut cur = k
            .initial_states()
            .find(|&s| k.label(s) == &settled0)
            .expect("matching initial state exists");

        for _ in 0..6 {
            // Clock the simulator with a fresh input vector.
            let key = rng() & ((1 << inputs.len()) - 1);
            sim.step(&[]);
            let settled = sim.settle(&assign(&inputs, key)).clone();
            let next = k
                .successors(cur)
                .find(|&s| k.label(s) == &settled);
            prop_assert!(next.is_some(), "simulator state unreachable in Kripke");
            cur = next.expect("checked");
        }
    }

    /// Every FSM transition's guard + source state reproduces the claimed
    /// destination when pushed through the module logic, and the guards out
    /// of each state cover all inputs.
    #[test]
    fn fsm_transitions_are_sound_and_complete(
        seed in 1u64..10_000,
        n_in in 1usize..3,
        n_latch in 1usize..4,
    ) {
        let (t, m) = rand_module(seed, n_in, n_latch);
        let fsm = extract_fsm(&m, &t, true).expect("fits");
        let state_vars = fsm.state_vars().to_vec();
        let input_vars = fsm.input_vars().to_vec();

        for s in 0..fsm.num_states() {
            for input_key in 0..(1u64 << input_vars.len()) {
                let mut v = Valuation::all_false(t.len());
                v.assign_key(&state_vars, fsm.state_key(s));
                v.assign_key(&input_vars, input_key);
                m.eval_wires(&mut v);
                let nexts = m.next_latch_values(&v);
                let mut to_key = 0u64;
                for (bit, b) in nexts.iter().enumerate() {
                    if *b {
                        to_key |= 1 << bit;
                    }
                }
                // Exactly the transitions whose guard matches this input
                // claim this (from, input) pair, and they agree on `to`.
                let claimed: Vec<_> = fsm
                    .transitions()
                    .iter()
                    .filter(|tr| tr.from == s && tr.guard.eval(&v))
                    .collect();
                prop_assert!(!claimed.is_empty(), "input not covered by any guard");
                for tr in claimed {
                    prop_assert_eq!(fsm.state_key(tr.to), to_key, "guard sends to wrong state");
                }
            }
        }
    }
}

fn assign(inputs: &[SignalId], key: u64) -> Vec<(SignalId, bool)> {
    inputs
        .iter()
        .enumerate()
        .map(|(bit, &s)| (s, key >> bit & 1 == 1))
        .collect()
}
