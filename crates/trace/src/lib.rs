//! `dic_trace` — zero-dependency structured observability for the
//! specmatcher engines.
//!
//! Three primitives, all process-global and disabled by default:
//!
//! * **Spans** — hierarchical timed regions (`span("phase.primary")`)
//!   forming a tree per run: the pipeline phases at the top, engine
//!   fixpoints and worker threads below. Guards are RAII; worker threads
//!   attach to a coordinator span via [`span_with_parent`].
//! * **Counters / gauges** — lock-free atomic tallies of engine work
//!   (BDD operations, memo/unique-table hits, cache hits, states
//!   expanded, Algorithm 1 verdict classes). Counters saturate at
//!   `u64::MAX` instead of wrapping; gauges track a level and a peak.
//! * **Events** — point-in-time occurrences with numeric fields
//!   (reorders, compactions), attributed to the enclosing span.
//!
//! Everything funnels into three sinks: a rendered `profile:` tree
//! ([`render_profile`]), a JSONL stream ([`write_jsonl`], replayable via
//! [`parse_jsonl`] + [`render_tree`]), and programmatic snapshots
//! ([`CounterSnapshot`]) that `dic_bench` embeds next to wall times.
//!
//! # Overhead contract
//!
//! Tracing is **off** unless [`set_enabled`]`(true)` ran. Call sites in
//! hot engine loops gate on [`enabled`] — a single `Relaxed` atomic
//! load — before touching anything else, so the disabled path costs one
//! predictable branch and golden reports, verdicts and benchmark wall
//! times are unchanged. Nothing here is sampled: when tracing is on the
//! numbers are exact.
//!
//! # Clock
//!
//! All timestamps are nanoseconds since a process-wide monotonic epoch
//! (first use of the crate). [`Stopwatch`] exposes the same clock for
//! plain duration measurements, so report timings, bench numbers and
//! span durations never disagree about what "now" is.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Global enable gate and clock
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Whether tracing is on. One `Relaxed` load — this is the check every
/// instrumented call site performs before doing any other work.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off process-wide. Flip it *before* the work you
/// want captured; spans already open keep their state.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide monotonic epoch.
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Clears all recorded spans, events, counters and gauges (the enable
/// flag is left alone). Call between independent runs sharing a process.
pub fn reset() {
    lock(&SPANS).clear();
    lock(&EVENTS).clear();
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for g in &GAUGES {
        g.store(0, Ordering::Relaxed);
    }
    NEXT_SPAN_ID.store(1, Ordering::Relaxed);
}

/// Locks a mutex, surviving poisoning (a panicking test thread must not
/// wedge every later trace consumer).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// The shared stopwatch
// ---------------------------------------------------------------------------

/// A duration timer on the same monotonic clock the spans use.
///
/// `dic_core` phase timings, `dic_bench` rows and the CLI's `table1`
/// summary all measure through this type, so every reported number is
/// derived from one clock.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start_ns: u64,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch { start_ns: now_ns() }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(now_ns().saturating_sub(self.start_ns))
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Every engine counter, one atomic cell each. Counter semantics are
/// monotone totals for the process (use [`CounterSnapshot`] deltas for
/// per-phase attribution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// `BddManager::ite` top-level + recursive invocations.
    BddIteOps,
    /// `BddManager::and_exists` recursive invocations.
    BddAndExistsOps,
    /// `BddManager::rename` recursive invocations.
    BddRenameOps,
    /// Operation-memo probes across `ite`/`and_exists`/`rename`.
    BddMemoLookups,
    /// Operation-memo probes that hit.
    BddMemoHits,
    /// Unique-table probes in `mk`.
    BddUniqueLookups,
    /// Unique-table probes that found an existing node.
    BddUniqueHits,
    /// Sifting reorders realized by the symbolic engine.
    BddReorders,
    /// Compacting rebuilds (every reorder compacts; compaction can also
    /// run without a sift).
    BddCompactions,
    /// Generational scratch-region collections (checkpoint rollbacks that
    /// actually freed nodes).
    BddGcCollections,
    /// Image/preimage steps computed through a partitioned (clustered)
    /// transition relation.
    BddPartitionImages,
    /// Formula translations answered from the GBA cache.
    GbaCacheHits,
    /// Formula translations that ran the tableau pipeline.
    GbaCacheMisses,
    /// Explicit-engine states expanded (Kripke build + product search).
    ExplicitStatesExpanded,
    /// Algorithm 1 weakening candidates enumerated (post-budget).
    GapCandidatesEnumerated,
    /// Candidates rejected by a pooled bad run or a directed probe.
    GapProbeRefuted,
    /// Candidates settled by implication into an accepted closer.
    GapImplicationSettled,
    /// Candidates that went all the way to a closure fixpoint.
    GapFixpointVerified,
    /// Budget slots refunded by the weakest-merge antichain.
    GapBudgetRefunds,
    /// CDCL decision-variable picks across all bounded-tier solves.
    SatDecisions,
    /// CDCL conflicts hit (first-UIP analysis rounds).
    SatConflicts,
    /// Clauses learned by conflict analysis.
    SatLearnedClauses,
    /// Bounded refutation queries issued ahead of closure fixpoints.
    BmcQueries,
    /// Bounded queries that found a refuting run (fixpoint skipped).
    BmcRefuted,
    /// Deterministic faults fired by an armed `dic_fault` plan.
    FaultInjected,
    /// Gap candidates left `unknown` by a degradable refusal, a caught
    /// worker panic, or a deadline stop.
    GapUnknownCandidates,
    /// Cooperative deadline checkpoints observed expired.
    DeadlineTrips,
}

impl Counter {
    /// Every counter, in canonical (rendering) order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::BddIteOps,
        Counter::BddAndExistsOps,
        Counter::BddRenameOps,
        Counter::BddMemoLookups,
        Counter::BddMemoHits,
        Counter::BddUniqueLookups,
        Counter::BddUniqueHits,
        Counter::BddReorders,
        Counter::BddCompactions,
        Counter::BddGcCollections,
        Counter::BddPartitionImages,
        Counter::GbaCacheHits,
        Counter::GbaCacheMisses,
        Counter::ExplicitStatesExpanded,
        Counter::GapCandidatesEnumerated,
        Counter::GapProbeRefuted,
        Counter::GapImplicationSettled,
        Counter::GapFixpointVerified,
        Counter::GapBudgetRefunds,
        Counter::SatDecisions,
        Counter::SatConflicts,
        Counter::SatLearnedClauses,
        Counter::BmcQueries,
        Counter::BmcRefuted,
        Counter::FaultInjected,
        Counter::GapUnknownCandidates,
        Counter::DeadlineTrips,
    ];

    /// The counter's stable dotted name (JSONL and profile key).
    pub const fn name(self) -> &'static str {
        match self {
            Counter::BddIteOps => "bdd.ite_ops",
            Counter::BddAndExistsOps => "bdd.and_exists_ops",
            Counter::BddRenameOps => "bdd.rename_ops",
            Counter::BddMemoLookups => "bdd.memo_lookups",
            Counter::BddMemoHits => "bdd.memo_hits",
            Counter::BddUniqueLookups => "bdd.unique_lookups",
            Counter::BddUniqueHits => "bdd.unique_hits",
            Counter::BddReorders => "bdd.reorders",
            Counter::BddCompactions => "bdd.compactions",
            Counter::BddGcCollections => "bdd.gc_collections",
            Counter::BddPartitionImages => "bdd.partition_images",
            Counter::GbaCacheHits => "gba.cache_hits",
            Counter::GbaCacheMisses => "gba.cache_misses",
            Counter::ExplicitStatesExpanded => "explicit.states_expanded",
            Counter::GapCandidatesEnumerated => "gap.candidates_enumerated",
            Counter::GapProbeRefuted => "gap.probe_refuted",
            Counter::GapImplicationSettled => "gap.implication_settled",
            Counter::GapFixpointVerified => "gap.fixpoint_verified",
            Counter::GapBudgetRefunds => "gap.budget_refunds",
            Counter::SatDecisions => "sat.decisions",
            Counter::SatConflicts => "sat.conflicts",
            Counter::SatLearnedClauses => "sat.learned_clauses",
            Counter::BmcQueries => "bmc.queries",
            Counter::BmcRefuted => "bmc.refuted",
            Counter::FaultInjected => "fault.injected",
            Counter::GapUnknownCandidates => "gap.unknown_candidates",
            Counter::DeadlineTrips => "deadline.trips",
        }
    }
}

/// Number of distinct counters.
pub const NUM_COUNTERS: usize = 27;

static COUNTERS: [AtomicU64; NUM_COUNTERS] = [const { AtomicU64::new(0) }; NUM_COUNTERS];

/// Adds `n` to a counter, saturating at `u64::MAX` (a saturated counter
/// stays saturated rather than wrapping back to small values).
///
/// No-op while tracing is disabled; hot call sites should additionally
/// gate on [`enabled`] to skip argument computation.
pub fn count(counter: Counter, n: u64) {
    if !enabled() {
        return;
    }
    let cell = &COUNTERS[counter as usize];
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(n);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// The current total of a counter.
pub fn counter_value(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

/// A point-in-time copy of every counter; subtract two snapshots to
/// attribute work to a phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: [u64; NUM_COUNTERS],
}

impl CounterSnapshot {
    /// Captures all current counter totals.
    pub fn capture() -> Self {
        let mut values = [0u64; NUM_COUNTERS];
        for (slot, cell) in values.iter_mut().zip(&COUNTERS) {
            *slot = cell.load(Ordering::Relaxed);
        }
        CounterSnapshot { values }
    }

    /// Work done since `self` was captured (saturating per counter).
    pub fn delta_since(&self) -> Self {
        let now = Self::capture();
        let mut values = [0u64; NUM_COUNTERS];
        for (slot, (cur, base)) in values.iter_mut().zip(now.values.iter().zip(&self.values)) {
            *slot = cur.saturating_sub(*base);
        }
        CounterSnapshot { values }
    }

    /// The snapshot's value for one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter as usize]
    }

    /// Adds `other` into `self` counter-by-counter (saturating) —
    /// accumulates per-property phase deltas into a per-run total.
    pub fn merge(&mut self, other: &CounterSnapshot) {
        for (slot, v) in self.values.iter_mut().zip(&other.values) {
            *slot = slot.saturating_add(*v);
        }
    }

    /// `(name, value)` for every counter with a nonzero value, in
    /// canonical order.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        Counter::ALL
            .iter()
            .filter_map(|&c| {
                let v = self.get(c);
                (v != 0).then_some((c.name(), v))
            })
            .collect()
    }

    /// True when every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

/// Level-style metrics (current value + peak), one atomic cell each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Live nodes in the BDD store right now.
    BddLiveNodes,
    /// High-water mark of [`Gauge::BddLiveNodes`].
    BddPeakNodes,
}

impl Gauge {
    /// Every gauge, in canonical order.
    pub const ALL: [Gauge; NUM_GAUGES] = [Gauge::BddLiveNodes, Gauge::BddPeakNodes];

    /// The gauge's stable dotted name.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::BddLiveNodes => "bdd.live_nodes",
            Gauge::BddPeakNodes => "bdd.peak_nodes",
        }
    }
}

/// Number of distinct gauges.
pub const NUM_GAUGES: usize = 2;

static GAUGES: [AtomicU64; NUM_GAUGES] = [const { AtomicU64::new(0) }; NUM_GAUGES];

/// Sets a gauge to `v`. No-op while tracing is disabled.
pub fn gauge_set(gauge: Gauge, v: u64) {
    if enabled() {
        GAUGES[gauge as usize].store(v, Ordering::Relaxed);
    }
}

/// Raises a gauge to `v` if `v` exceeds its current value.
pub fn gauge_max(gauge: Gauge, v: u64) {
    if enabled() {
        GAUGES[gauge as usize].fetch_max(v, Ordering::Relaxed);
    }
}

/// The current value of a gauge.
pub fn gauge_value(gauge: Gauge) -> u64 {
    GAUGES[gauge as usize].load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static SPANS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static EVENTS: Mutex<Vec<EventRecord>> = Mutex::new(Vec::new());

thread_local! {
    /// Per-thread stack of open span ids; the top is the parent of the
    /// next span (and the attribution target of events).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A closed span, as recorded (and as replayed from JSONL).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique id (ids start at 1; 0 is "no parent").
    pub id: u64,
    /// Id of the enclosing span, 0 for a root.
    pub parent: u64,
    /// Dotted span name (`phase.primary`, `gap.worker`, …).
    pub name: String,
    /// Open timestamp, ns since the trace epoch.
    pub start_ns: u64,
    /// Close timestamp, ns since the trace epoch.
    pub end_ns: u64,
    /// Numeric attachments, in insertion order.
    pub meta: Vec<(String, u64)>,
}

/// A point event, as recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Dotted event name (`bdd.reorder`, `bdd.compact`, …).
    pub name: String,
    /// Timestamp, ns since the trace epoch.
    pub at_ns: u64,
    /// Id of the span the event occurred under (0 = none).
    pub span: u64,
    /// Numeric fields, in insertion order.
    pub fields: Vec<(String, u64)>,
}

/// RAII guard for an open span; the span closes (and is recorded) on
/// drop. Obtained from [`span`] or [`span_with_parent`].
#[must_use = "a span measures the region it is alive for"]
pub struct SpanGuard {
    id: u64,
    name: &'static str,
    parent: u64,
    start_ns: u64,
    meta: Vec<(&'static str, u64)>,
    live: bool,
}

/// Opens a span under the current thread's innermost open span.
/// Returns an inert guard while tracing is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::dead();
    }
    let parent = current_span_id();
    open_span(name, parent)
}

/// Opens a span under an explicit parent id — the cross-thread variant:
/// a coordinator captures [`current_span_id`] and hands it to worker
/// threads so their spans nest correctly in the tree.
pub fn span_with_parent(name: &'static str, parent: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard::dead();
    }
    open_span(name, parent)
}

/// The innermost open span id on this thread (0 when none).
pub fn current_span_id() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

fn open_span(name: &'static str, parent: u64) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        id,
        name,
        parent,
        start_ns: now_ns(),
        meta: Vec::new(),
        live: true,
    }
}

impl SpanGuard {
    fn dead() -> Self {
        SpanGuard {
            id: 0,
            name: "",
            parent: 0,
            start_ns: 0,
            meta: Vec::new(),
            live: false,
        }
    }

    /// Attaches a numeric key/value to the span (summed across a group
    /// in the rendered tree). No-op on an inert guard.
    pub fn meta(&mut self, key: &'static str, value: u64) {
        if self.live {
            self.meta.push((key, value));
        }
    }

    /// The span's id, for use as a cross-thread parent (0 when inert).
    pub fn id(&self) -> u64 {
        if self.live {
            self.id
        } else {
            0
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let end_ns = now_ns();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name.to_string(),
            start_ns: self.start_ns,
            end_ns,
            meta: self.meta.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        };
        lock(&SPANS).push(record);
    }
}

/// Records a point event with numeric fields, attributed to the current
/// thread's innermost open span. No-op while tracing is disabled.
pub fn event(name: &'static str, fields: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    let record = EventRecord {
        name: name.to_string(),
        at_ns: now_ns(),
        span: current_span_id(),
        fields: fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
    };
    lock(&EVENTS).push(record);
}

// ---------------------------------------------------------------------------
// Capture + rendering
// ---------------------------------------------------------------------------

/// Everything the trace recorded: the input of [`render_tree`] and the
/// output of [`parse_jsonl`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceData {
    /// Closed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Events, in occurrence order.
    pub events: Vec<EventRecord>,
    /// Nonzero counters as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Nonzero gauges as `(name, value)`.
    pub gauges: Vec<(String, u64)>,
}

/// Snapshots the live trace state (spans closed so far, events, nonzero
/// counters and gauges).
pub fn capture() -> TraceData {
    let counters = CounterSnapshot::capture()
        .nonzero()
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
    let gauges = Gauge::ALL
        .iter()
        .filter_map(|&g| {
            let v = gauge_value(g);
            (v != 0).then(|| (g.name().to_string(), v))
        })
        .collect();
    TraceData {
        spans: lock(&SPANS).clone(),
        events: lock(&EVENTS).clone(),
        counters,
        gauges,
    }
}

/// Renders the live trace as a `profile:` tree (see [`render_tree`]).
pub fn render_profile() -> String {
    render_tree(&capture())
}

/// Renders a `profile:` block: the span tree (sibling spans grouped by
/// name with summed durations, `(xN)` multiplicities and summed meta),
/// then nonzero counters, gauges and an event summary. Deterministic in
/// the data, so a JSONL replay renders the identical block.
pub fn render_tree(data: &TraceData) -> String {
    let mut out = String::from("profile:\n");
    let mut lines: Vec<(usize, String, String)> = Vec::new();

    // Index spans: children by parent id, roots = parent 0 or unknown.
    let known: std::collections::HashSet<u64> = data.spans.iter().map(|s| s.id).collect();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in data.spans.iter().enumerate() {
        if s.parent != 0 && known.contains(&s.parent) {
            children.entry(s.parent).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    collect_group(data, &roots, &children, 1, &mut lines);

    if lines.is_empty() {
        out.push_str("  (no spans recorded)\n");
    } else {
        let width = lines
            .iter()
            .map(|(depth, label, _)| 2 * depth + label.len())
            .max()
            .unwrap_or(0);
        for (depth, label, rest) in &lines {
            let pad = width - (2 * depth + label.len());
            let _ = writeln!(out, "{}{}{}  {}", "  ".repeat(*depth), label, " ".repeat(pad), rest);
        }
    }

    if !data.counters.is_empty() {
        out.push_str("  counters:\n");
        let mut counters = data.counters.clone();
        counters.sort();
        let width = counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &counters {
            let _ = writeln!(out, "    {name:<width$}  {value}");
        }
    }
    if !data.gauges.is_empty() {
        out.push_str("  gauges:\n");
        let mut gauges = data.gauges.clone();
        gauges.sort();
        let width = gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &gauges {
            let _ = writeln!(out, "    {name:<width$}  {value}");
        }
    }
    if !data.events.is_empty() {
        let mut by_name: Vec<(String, usize)> = Vec::new();
        for e in &data.events {
            match by_name.iter_mut().find(|(n, _)| *n == e.name) {
                Some((_, c)) => *c += 1,
                None => by_name.push((e.name.clone(), 1)),
            }
        }
        by_name.sort();
        let summary: Vec<String> = by_name.iter().map(|(n, c)| format!("{n} x{c}")).collect();
        let _ = writeln!(out, "  events: {} ({})", data.events.len(), summary.join(", "));
    }
    out
}

/// Emits one tree level: the spans at `indices`, grouped by name in
/// first-start order, then each group's children one level deeper.
fn collect_group(
    data: &TraceData,
    indices: &[usize],
    children: &HashMap<u64, Vec<usize>>,
    depth: usize,
    lines: &mut Vec<(usize, String, String)>,
) {
    let mut ordered = indices.to_vec();
    ordered.sort_by_key(|&i| (data.spans[i].start_ns, data.spans[i].id));
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for i in ordered {
        let name = &data.spans[i].name;
        match groups.iter_mut().find(|(n, _)| n == name) {
            Some((_, members)) => members.push(i),
            None => groups.push((name.clone(), vec![i])),
        }
    }
    for (name, members) in groups {
        let total_ns: u64 = members
            .iter()
            .map(|&i| data.spans[i].end_ns.saturating_sub(data.spans[i].start_ns))
            .sum();
        let mut meta: Vec<(String, u64)> = Vec::new();
        for &i in &members {
            for (k, v) in &data.spans[i].meta {
                match meta.iter_mut().find(|(n, _)| n == k) {
                    Some((_, total)) => *total = total.saturating_add(*v),
                    None => meta.push((k.clone(), *v)),
                }
            }
        }
        let mut rest = fmt_ns(total_ns);
        if members.len() > 1 {
            let _ = write!(rest, " (x{})", members.len());
        }
        if !meta.is_empty() {
            let parts: Vec<String> = meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = write!(rest, " [{}]", parts.join(" "));
        }
        lines.push((depth, name, rest));
        let nested: Vec<usize> = members
            .iter()
            .flat_map(|&i| children.get(&data.spans[i].id).cloned().unwrap_or_default())
            .collect();
        if !nested.is_empty() {
            collect_group(data, &nested, children, depth + 1, lines);
        }
    }
}

/// Human-readable duration from nanoseconds (deterministic — replay
/// renders byte-identical trees).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

// ---------------------------------------------------------------------------
// JSONL sink + replay
// ---------------------------------------------------------------------------

/// Schema identifier written as the first JSONL line.
pub const JSONL_SCHEMA: &str = "specmatcher-trace/1";

/// Serializes trace data as JSONL: a `meta` header line, then one line
/// per span close, event, nonzero counter and nonzero gauge. All
/// timestamps are ns offsets from the trace epoch.
pub fn to_jsonl(data: &TraceData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{\"type\":\"meta\",\"schema\":\"{JSONL_SCHEMA}\"}}");
    for s in &data.spans {
        let _ = write!(
            out,
            "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"meta\":{}}}",
            s.id,
            s.parent,
            escape(&s.name),
            s.start_ns,
            s.end_ns,
            flat_obj(&s.meta),
        );
        out.push('\n');
    }
    for e in &data.events {
        let _ = write!(
            out,
            "{{\"type\":\"event\",\"name\":\"{}\",\"at_ns\":{},\"span\":{},\"fields\":{}}}",
            escape(&e.name),
            e.at_ns,
            e.span,
            flat_obj(&e.fields),
        );
        out.push('\n');
    }
    for (name, value) in &data.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            escape(name)
        );
    }
    for (name, value) in &data.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}",
            escape(name)
        );
    }
    out
}

/// Writes the live trace to `path` as JSONL (see [`to_jsonl`]).
pub fn write_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_jsonl(&capture()))
}

fn flat_obj(fields: &[(String, u64)]) -> String {
    let parts: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One parsed JSON value of the trace schema (numbers are u64; nested
/// objects are flat name→number maps).
enum JsonValue {
    Num(u64),
    Str(String),
    Obj(Vec<(String, u64)>),
}

/// Parses a JSONL trace produced by [`to_jsonl`] back into [`TraceData`]
/// (unknown line types are skipped so the schema can grow).
pub fn parse_jsonl(text: &str) -> Result<TraceData, String> {
    let mut data = TraceData::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let get_str = |key: &str| -> Result<String, String> {
            match obj.iter().find(|(k, _)| k == key) {
                Some((_, JsonValue::Str(s))) => Ok(s.clone()),
                _ => Err(format!("line {}: missing string \"{key}\"", lineno + 1)),
            }
        };
        let get_num = |key: &str| -> Result<u64, String> {
            match obj.iter().find(|(k, _)| k == key) {
                Some((_, JsonValue::Num(n))) => Ok(*n),
                _ => Err(format!("line {}: missing number \"{key}\"", lineno + 1)),
            }
        };
        let get_obj = |key: &str| -> Vec<(String, u64)> {
            match obj.iter().find(|(k, _)| k == key) {
                Some((_, JsonValue::Obj(fields))) => fields.clone(),
                _ => Vec::new(),
            }
        };
        match get_str("type")?.as_str() {
            "span" => data.spans.push(SpanRecord {
                id: get_num("id")?,
                parent: get_num("parent")?,
                name: get_str("name")?,
                start_ns: get_num("start_ns")?,
                end_ns: get_num("end_ns")?,
                meta: get_obj("meta"),
            }),
            "event" => data.events.push(EventRecord {
                name: get_str("name")?,
                at_ns: get_num("at_ns")?,
                span: get_num("span")?,
                fields: get_obj("fields"),
            }),
            "counter" => data.counters.push((get_str("name")?, get_num("value")?)),
            "gauge" => data.gauges.push((get_str("name")?, get_num("value")?)),
            _ => {} // meta header, future line types
        }
    }
    Ok(data)
}

/// Parses one flat-or-two-level JSON object line of the trace schema.
fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    expect(bytes, &mut pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, &mut pos);
    if peek(bytes, pos) == Some(b'}') {
        return Ok(fields);
    }
    loop {
        skip_ws(bytes, &mut pos);
        let key = parse_string(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        expect(bytes, &mut pos, b':')?;
        skip_ws(bytes, &mut pos);
        let value = match peek(bytes, pos) {
            Some(b'"') => JsonValue::Str(parse_string(bytes, &mut pos)?),
            Some(b'{') => {
                expect(bytes, &mut pos, b'{')?;
                let mut inner = Vec::new();
                skip_ws(bytes, &mut pos);
                if peek(bytes, pos) == Some(b'}') {
                    pos += 1;
                } else {
                    loop {
                        skip_ws(bytes, &mut pos);
                        let k = parse_string(bytes, &mut pos)?;
                        skip_ws(bytes, &mut pos);
                        expect(bytes, &mut pos, b':')?;
                        skip_ws(bytes, &mut pos);
                        let v = parse_number(bytes, &mut pos)?;
                        inner.push((k, v));
                        skip_ws(bytes, &mut pos);
                        match peek(bytes, pos) {
                            Some(b',') => pos += 1,
                            Some(b'}') => {
                                pos += 1;
                                break;
                            }
                            _ => return Err("expected ',' or '}' in nested object".into()),
                        }
                    }
                }
                JsonValue::Obj(inner)
            }
            Some(c) if c.is_ascii_digit() => JsonValue::Num(parse_number(bytes, &mut pos)?),
            _ => return Err(format!("unexpected value at byte {pos}")),
        };
        fields.push((key, value));
        skip_ws(bytes, &mut pos);
        match peek(bytes, pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok(fields),
            _ => return Err("expected ',' or '}'".into()),
        }
    }
}

fn peek(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes.get(pos).copied()
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while peek(bytes, *pos) == Some(b' ') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if peek(bytes, *pos) == Some(c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match peek(bytes, *pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match peek(bytes, *pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    _ => return Err("unsupported escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let start = *pos;
    while peek(bytes, *pos).is_some_and(|c| c.is_ascii_digit()) {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected a number at byte {start}"));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| "invalid utf-8".to_string())?
        .parse::<u64>()
        .map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// The trace state is process-global; tests serialize on this lock
    /// and reset the state while holding it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        reset();
        guard
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = exclusive();
        set_enabled(false);
        {
            let mut s = span("nope");
            s.meta("k", 1);
            count(Counter::BddIteOps, 5);
            gauge_max(Gauge::BddPeakNodes, 10);
            event("nope.event", &[("a", 1)]);
        }
        let data = capture();
        assert!(data.spans.is_empty());
        assert!(data.events.is_empty());
        assert!(data.counters.is_empty());
        assert!(data.gauges.is_empty());
        set_enabled(true);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let _g = exclusive();
        count(Counter::GapBudgetRefunds, u64::MAX);
        count(Counter::GapBudgetRefunds, u64::MAX);
        count(Counter::GapBudgetRefunds, 7);
        assert_eq!(counter_value(Counter::GapBudgetRefunds), u64::MAX);
        let snap = CounterSnapshot::capture();
        assert_eq!(snap.get(Counter::GapBudgetRefunds), u64::MAX);
        assert_eq!(
            snap.nonzero(),
            vec![("gap.budget_refunds", u64::MAX)],
        );
    }

    #[test]
    fn snapshot_deltas_attribute_per_phase() {
        let _g = exclusive();
        count(Counter::BddIteOps, 10);
        let before = CounterSnapshot::capture();
        count(Counter::BddIteOps, 32);
        count(Counter::GbaCacheHits, 4);
        let delta = before.delta_since();
        assert_eq!(delta.get(Counter::BddIteOps), 32);
        assert_eq!(delta.get(Counter::GbaCacheHits), 4);
        assert!(!delta.is_empty());
    }

    #[test]
    fn spans_nest_across_worker_threads() {
        let _g = exclusive();
        let parent_id;
        {
            let coordinator = span("gap.verify");
            parent_id = coordinator.id();
            assert_eq!(current_span_id(), parent_id);
            std::thread::scope(|scope| {
                for w in 0..3u64 {
                    scope.spawn(move || {
                        let mut worker = span_with_parent("gap.worker", parent_id);
                        worker.meta("claimed", w + 1);
                        // A span opened inside the worker nests under it.
                        let inner = span("gap.closure");
                        assert_eq!(current_span_id(), inner.id());
                        drop(inner);
                        assert_eq!(current_span_id(), worker.id());
                    });
                }
            });
        }
        let data = capture();
        let find = |name: &str| -> Vec<&SpanRecord> {
            data.spans.iter().filter(|s| s.name == name).collect()
        };
        let coordinator = find("gap.verify");
        assert_eq!(coordinator.len(), 1);
        let workers = find("gap.worker");
        assert_eq!(workers.len(), 3);
        for w in &workers {
            assert_eq!(w.parent, coordinator[0].id);
            assert!(w.start_ns <= w.end_ns);
        }
        let claimed: u64 = workers
            .iter()
            .flat_map(|w| w.meta.iter())
            .filter(|(k, _)| k == "claimed")
            .map(|(_, v)| v)
            .sum();
        assert_eq!(claimed, 1 + 2 + 3);
        for inner in find("gap.closure") {
            assert!(workers.iter().any(|w| w.id == inner.parent));
        }
    }

    #[test]
    fn jsonl_replays_into_the_identical_tree() {
        let _g = exclusive();
        {
            let _root = span("check");
            {
                let mut phase = span("phase.primary");
                phase.meta("conjuncts", 3);
                event("bdd.reorder", &[("live_before", 100), ("live_after", 40)]);
            }
            let _a = span("phase.gap_find");
            count(Counter::BddIteOps, 1234);
            gauge_max(Gauge::BddPeakNodes, 999);
        }
        let live = capture();
        let replayed = parse_jsonl(&to_jsonl(&live)).expect("own output parses");
        assert_eq!(live, replayed);
        assert_eq!(render_tree(&live), render_tree(&replayed));
        let tree = render_tree(&live);
        assert!(tree.starts_with("profile:\n"));
        assert!(tree.contains("check"));
        assert!(tree.contains("phase.primary"));
        assert!(tree.contains("[conjuncts=3]"));
        assert!(tree.contains("bdd.ite_ops"));
        assert!(tree.contains("bdd.peak_nodes"));
        assert!(tree.contains("events: 1 (bdd.reorder x1)"));
    }

    #[test]
    fn sibling_spans_group_with_multiplicity() {
        let _g = exclusive();
        {
            let _root = span("check");
            for _ in 0..3 {
                let _r = span("symbolic.reachable");
            }
        }
        let tree = render_profile();
        assert!(tree.contains("symbolic.reachable"), "{tree}");
        assert!(tree.contains("(x3)"), "{tree}");
    }

    #[test]
    fn stopwatch_measures_on_the_shared_clock() {
        let t = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let d = t.elapsed();
        assert!(d >= Duration::from_millis(2));
        assert!(d < Duration::from_secs(10));
    }

    #[test]
    fn parser_rejects_garbage_and_skips_unknown_types() {
        let _g = exclusive();
        assert!(parse_jsonl("{\"type\":").is_err());
        assert!(parse_jsonl("{\"type\":\"span\",\"id\":1}").is_err());
        let ok = parse_jsonl("{\"type\":\"future-thing\",\"name\":\"x\"}\n").expect("skips");
        assert!(ok.spans.is_empty());
    }
}
