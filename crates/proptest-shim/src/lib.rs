//! Offline stand-in for the subset of the [proptest](https://docs.rs/proptest)
//! API this workspace's property tests use.
//!
//! The container this workspace builds in has no access to crates.io, so
//! instead of the real `proptest` the test crates link this shim (its lib
//! target is named `proptest`, so `use proptest::prelude::*;` resolves here
//! unchanged). It keeps proptest's *shape* — `Strategy`, `BoxedStrategy`,
//! `Just`, `prop_oneof!`, `prop_recursive`, `prop::collection::vec`, the
//! `proptest!` macro — but deliberately simplifies the engine:
//!
//! * generation is a deterministic splitmix64 stream seeded per test name,
//!   so failures reproduce across runs and machines;
//! * there is **no shrinking**: a failing case panics with the case index,
//!   which is enough to re-run under a debugger given determinism;
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.
//!
//! If the real proptest ever becomes available, deleting this crate and
//! pointing the `proptest-shim` workspace dependency at crates.io is the
//! only change required.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything the property tests import via `proptest::prelude::*`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` module path (`prop::collection::vec(..)`).
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body.
///
/// The real proptest returns a `TestCaseError` so the runner can shrink;
/// without shrinking a panic carries the same information.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::uniform(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let __run = || {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                        $body
                    };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                        eprintln!(
                            "proptest-shim: {} failed at case {}/{} (deterministic seed; rerun reproduces)",
                            stringify!($name), __case, __config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
