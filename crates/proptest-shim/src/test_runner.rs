//! Deterministic random source and run configuration.

/// Run configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Config {
    /// Proptest-compatible constructor: run `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A splitmix64 stream. Deterministic on purpose: every CI run and every
/// laptop explores the same inputs, so a red property test is always
/// reproducible by rerunning the suite.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary integer.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seeds from a test name (FNV-1a), so distinct properties in one file
    /// draw distinct streams.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        // Multiply-shift bounded draw (Lemire); bias is negligible for the
        // small ranges strategies use.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}
