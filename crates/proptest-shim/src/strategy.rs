//! The `Strategy` trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value-tree/shrinking layer: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` wraps the strategy for the
    /// next-shallower level; nesting is cut off after `depth` levels.
    ///
    /// `desired_size` and `expected_branch_size` are accepted for proptest
    /// signature compatibility but only bias the leaf/branch coin.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            // 1 part leaves to 3 parts branches keeps expressions from
            // collapsing to leaves while the depth bound still caps size.
            let deeper = recurse(level).boxed();
            level = Union::weighted(vec![(1, base.clone()), (3, deeper)]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn uniform(options: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Choice proportional to the given weights.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "empty Union");
        let total = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "Union with zero total weight");
        Union { options, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty char range");
        loop {
            let c = lo + rng.below(u64::from(hi - lo)) as u32;
            if let Some(c) = char::from_u32(c) {
                return c;
            }
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
