#!/usr/bin/env bash
# Per-suite wall-clock summary for the workspace's integration suites —
# a stable-toolchain stand-in for `cargo test -- --report-time`.
# Usage: scripts/test-timings.sh [extra cargo-test args, e.g. -- --ignored]
set -euo pipefail
cd "$(dirname "$0")/.."

printf '%10s  %s\n' "wall" "suite"
total_start=$(date +%s.%N)
for t in tests/*.rs; do
  name=$(basename "$t" .rs)
  start=$(date +%s.%N)
  if cargo test -q --test "$name" "$@" > /dev/null 2>&1; then
    status=ok
  else
    status=FAILED
  fi
  end=$(date +%s.%N)
  printf '%9.1fs  %s (%s)\n' "$(awk -v a="$start" -v b="$end" 'BEGIN{print b-a}')" "$name" "$status"
done
total_end=$(date +%s.%N)
printf '%9.1fs  total\n' "$(awk -v a="$total_start" -v b="$total_end" 'BEGIN{print b-a}')"
